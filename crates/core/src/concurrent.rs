//! Concurrent DyTIS (§3.4), with an optimistic read path (DESIGN.md §14).
//!
//! Writers keep the paper's two-level locking per EH table: a high-level
//! lock on the directory array and low-level reader/writer locks per
//! segment. Operations that only change the contents of one segment
//! object — normal insert, remapping, expansion, remove/shrink —
//! synchronize at the segment level (under a directory *read* lock so the
//! directory cannot move underneath them); operations that change the
//! structure — split and directory doubling — take the directory *write*
//! lock (hand-over-hand: directory first, then the victim segment).
//!
//! Readers no longer take the directory lock at all. Each table publishes
//! an immutable [`DirSnapshot`] behind an [`EpochPtr`]; a `get`/`scan`
//! pins an epoch guard, loads the snapshot, and probes the target segment
//! seqlock-style: check the segment's version counter is even (no writer
//! mid-mutation), `try_read` the segment (never blocks), re-check the
//! version after the probe, and retry on any mismatch. Retries are
//! bounded; on exhaustion (or when the epoch collector has no free slot)
//! the reader falls back to the original locked path, so the optimistic
//! path is an optimization, never a liveness requirement. Retired
//! snapshots are freed through [`crate::epoch`] only after every reader
//! that could hold them has unpinned.
//!
//! The old invariant "a directory write-lock holder knows no segment lock
//! is held" no longer holds: optimistic readers hold segment *read* locks
//! without the directory lock, so `maintain`'s segment write acquisition
//! can block briefly behind them. That is safe — readers never wait on
//! anything while holding a segment guard, so no cycle can form — but it
//! is why structural surgery keeps the victim segment's write lock until
//! after the new snapshot is published: any reader that acquires the
//! segment after the release observes `retired` and reloads.
//!
//! Sibling navigation for scans walks the snapshot (equivalent order to
//! the single-threaded sibling pointers) without any directory lock.

use crate::epoch::{Collector, EpochPtr, EpochStats, Guard};
use crate::params::Params;
use crate::remap::mask64;
use crate::segment::{BucketUpsert, RemapOutcome, Segment};
use crate::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use crate::sync::{Arc, RwLock, RwLockWriteGuard};
use index_traits::{AuditReport, Auditable, ConcurrentKvIndex, Key, Value};

/// Optimistic probe attempts per `get` before falling back to locks.
const READ_RETRIES: usize = 8;
/// Optimistic restarts per table in `scan` before falling back to locks.
const SCAN_RESTARTS: usize = 4;

/// A shared segment plus the metadata the optimistic read protocol needs.
pub(crate) struct CSeg {
    /// Seqlock-style version: odd while a writer holds `data`'s write lock
    /// (bumped right after acquisition and right before release), even and
    /// strictly monotone otherwise. Readers validate it around probes.
    version: AtomicU64,
    /// Set (under the directory write lock, before the replacement
    /// snapshot is published) when a split removes this segment from the
    /// directory. Readers holding a stale snapshot bail out and reload.
    retired: AtomicBool,
    data: RwLock<Segment>,
}

impl CSeg {
    fn new(seg: Segment) -> Arc<CSeg> {
        Arc::new(CSeg {
            version: AtomicU64::new(0),
            retired: AtomicBool::new(false),
            data: RwLock::new(seg),
        })
    }

    /// Write-locks the segment and marks the mutation window open (odd
    /// version). The guard closes the window (even again) on drop, before
    /// the lock itself is released.
    fn write(&self) -> SegWrite<'_> {
        let guard = self.data.write();
        self.version.fetch_add(1, Ordering::SeqCst);
        SegWrite { cseg: self, guard }
    }
}

/// Write guard that brackets the segment mutation with version bumps.
struct SegWrite<'a> {
    cseg: &'a CSeg,
    guard: RwLockWriteGuard<'a, Segment>,
}

impl std::ops::Deref for SegWrite<'_> {
    type Target = Segment;
    fn deref(&self) -> &Segment {
        &self.guard
    }
}

impl std::ops::DerefMut for SegWrite<'_> {
    fn deref_mut(&mut self) -> &mut Segment {
        &mut self.guard
    }
}

impl Drop for SegWrite<'_> {
    fn drop(&mut self) {
        // Runs before the `guard` field drops, so the version returns to
        // even while the write lock is still held: a reader that sees an
        // even version and then wins a `try_read` sees finished data.
        self.cseg.version.fetch_add(1, Ordering::SeqCst);
    }
}

/// Immutable directory snapshot published to readers. The `Arc` clones
/// keep every referenced segment alive independent of the live directory,
/// so the epoch collector only ever has to reclaim snapshot boxes.
pub(crate) struct DirSnapshot {
    generation: u64,
    global_depth: u32,
    entries: Vec<Arc<CSeg>>,
}

/// Directory of one concurrent EH table.
struct CDir {
    global_depth: u32,
    /// Bumped by every structural change (split installation, doubling);
    /// the published snapshot must always carry the current value.
    generation: u64,
    entries: Vec<Arc<CSeg>>,
    /// Active segment-size limit multiplier (adaptive, §3.3).
    active_limit_mult: u32,
    limit_decided: bool,
}

/// One concurrent EH table: directory lock + per-segment locks + the
/// reader-facing snapshot.
struct CEh {
    dir: RwLock<CDir>,
    snap: EpochPtr<DirSnapshot>,
    num_keys: AtomicUsize,
    splits: AtomicU64,
    expansions: AtomicU64,
    remaps: AtomicU64,
    doublings: AtomicU64,
    shrinks: AtomicU64,
}

impl CEh {
    /// Re-publishes the directory as a fresh snapshot, retiring the old
    /// one through `epoch`. Caller must hold the directory write lock and
    /// have bumped `dir.generation` for the structural change.
    fn publish(&self, dir: &CDir, epoch: &Collector) {
        self.snap.swap(
            Box::new(DirSnapshot {
                generation: dir.generation,
                global_depth: dir.global_depth,
                entries: dir.entries.clone(),
            }),
            epoch,
        );
    }
}

/// Read-path statistics (always on, like [`ConcurrentDyTis::insert_retries`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReadStats {
    /// Optimistic probe attempts that had to be repeated (version moved,
    /// `try_read` lost to a writer, or the segment was retired mid-probe).
    pub retries: u64,
    /// Reads that exhausted their retry budget (or found no epoch slot)
    /// and completed on the locked path instead.
    pub fallbacks: u64,
    /// Reads (point or per-table scan legs) that executed under locks —
    /// fallbacks plus everything served while `set_locked_reads(true)`.
    /// Zero here proves the optimistic hit path took no lock at all.
    pub locked: u64,
}

/// The multi-threaded DyTIS index (used by the Figure 12 evaluation).
pub struct ConcurrentDyTis {
    params: Params,
    tables: Vec<CEh>,
    m_total: u32,
    /// Epoch collector for retired directory snapshots; shared by every
    /// table so one pin covers any snapshot the operation may load.
    epoch: Collector,
    /// When set, `get`/`scan` skip the optimistic path entirely — the
    /// lock-based baseline bar of the read-scaling sweep.
    locked_reads: AtomicBool,
    /// Times an insert lost its fast path to contention or a pending
    /// structural fix and had to retry through `maintain`.
    insert_retries: AtomicU64,
    read_retries: AtomicU64,
    read_fallbacks: AtomicU64,
    read_locked: AtomicU64,
}

impl ConcurrentDyTis {
    /// Creates an index with the paper's default parameters.
    pub fn new() -> Self {
        Self::with_params(Params::default())
    }

    /// Creates an index with explicit [`Params`].
    ///
    /// # Panics
    ///
    /// Panics if `first_level_bits` is outside `1..=16`.
    pub fn with_params(params: Params) -> Self {
        let r = params.first_level_bits;
        assert!((1..=16).contains(&r));
        let m_total = 64 - r;
        let tables = (0..(1usize << r))
            .map(|_| {
                let entries = vec![CSeg::new(Segment::new(0))];
                CEh {
                    snap: EpochPtr::new(Box::new(DirSnapshot {
                        generation: 0,
                        global_depth: 0,
                        entries: entries.clone(),
                    })),
                    dir: RwLock::new(CDir {
                        global_depth: 0,
                        generation: 0,
                        entries,
                        active_limit_mult: params.limit_mult,
                        limit_decided: false,
                    }),
                    num_keys: AtomicUsize::new(0),
                    splits: AtomicU64::new(0),
                    expansions: AtomicU64::new(0),
                    remaps: AtomicU64::new(0),
                    doublings: AtomicU64::new(0),
                    shrinks: AtomicU64::new(0),
                }
            })
            .collect();
        ConcurrentDyTis {
            params,
            tables,
            m_total,
            epoch: Collector::new(),
            locked_reads: AtomicBool::new(false),
            insert_retries: AtomicU64::new(0),
            read_retries: AtomicU64::new(0),
            read_fallbacks: AtomicU64::new(0),
            read_locked: AtomicU64::new(0),
        }
    }

    /// Totals of the structural maintenance operations performed so far
    /// (splits, segment expansions, remaps, directory doublings, shrinks),
    /// summed over all first-level tables.  Exact once writers have
    /// quiesced.  `keys_moved` is not tracked by the concurrent variant and
    /// reads 0.
    pub fn maintenance_stats(&self) -> index_traits::MaintenanceStats {
        let mut s = index_traits::MaintenanceStats::default();
        for t in &self.tables {
            // relaxed: monotonic advisory counters; exact totals are only
            // required after the writing threads have been joined.
            s.splits += t.splits.load(Ordering::Relaxed);
            // relaxed: see above.
            s.expansions += t.expansions.load(Ordering::Relaxed);
            // relaxed: see above.
            s.remaps += t.remaps.load(Ordering::Relaxed);
            // relaxed: see above.
            s.doublings += t.doublings.load(Ordering::Relaxed);
            // relaxed: see above.
            s.shrinks += t.shrinks.load(Ordering::Relaxed);
        }
        s
    }

    /// Times an insert had to retry through the slow path (see field doc).
    pub fn insert_retries(&self) -> u64 {
        // relaxed: monotonic advisory counter.
        self.insert_retries.load(Ordering::Relaxed)
    }

    /// Optimistic-read retry/fallback counters (see [`ReadStats`]).
    pub fn read_stats(&self) -> ReadStats {
        ReadStats {
            // relaxed: monotonic advisory counters.
            retries: self.read_retries.load(Ordering::Relaxed),
            // relaxed: see above.
            fallbacks: self.read_fallbacks.load(Ordering::Relaxed),
            // relaxed: see above.
            locked: self.read_locked.load(Ordering::Relaxed),
        }
    }

    /// Deferred-reclamation counters of the snapshot collector.
    pub fn epoch_stats(&self) -> EpochStats {
        self.epoch.stats()
    }

    /// Forces `get`/`scan` onto the §3.4 locked path (`true`) or back to
    /// optimistic reads (`false`, the default). Used as the baseline bar
    /// in the read-scaling sweep.
    pub fn set_locked_reads(&self, locked: bool) {
        // relaxed: a mode toggle; it guards no data, and either path is
        // correct at any moment.
        self.locked_reads.store(locked, Ordering::Relaxed);
    }

    /// Intentionally broken insert, compiled only for model checking:
    /// proves the loom models are non-vacuous.
    ///
    /// Identical to [`ConcurrentKvIndex::insert`] except the table key
    /// count is bumped *after* the segment lock is dropped, and with a
    /// torn `load`+`store` instead of `fetch_add` — the "it's just a
    /// counter" shortcut the §3.4 protocol forbids. The loom model in
    /// `tests/loom_models.rs` must find the two-thread schedule where one
    /// increment is lost (`len()` under-counts, the `table-key-count`
    /// audit trips). Callers must pick keys that fit the existing buckets;
    /// the maintenance slow path is deliberately not reproduced here.
    #[cfg(loom)]
    pub fn insert_seeded_torn_counter(&self, key: Key, value: Value) {
        let table = &self.tables[self.table_of(key)];
        let sk = self.sub_key(key);
        let p = &self.params;
        let inserted = {
            let dir = table.dir.read();
            let cseg = Arc::clone(&dir.entries[Self::dir_index(&dir, sk, self.m_total)]);
            let mut seg = cseg.write();
            let m = self.m_total - seg.local_depth;
            let k = sk & mask64(m);
            let b = seg.bucket_of(k, self.m_total);
            match seg.upsert_in_bucket(b, key, value, p.bucket_entries) {
                BucketUpsert::Inserted => true,
                BucketUpsert::Updated => false,
                BucketUpsert::Full => panic!("seeded-bug insert requires a key that fits"),
            }
        };
        if inserted {
            // BUG (seeded): torn read-modify-write outside the critical
            // section — a concurrent insert between the load and the store
            // loses an increment.
            let n = table.num_keys.load(Ordering::Acquire);
            table.num_keys.store(n + 1, Ordering::Release);
        }
    }

    #[inline]
    fn table_of(&self, key: Key) -> usize {
        (key >> (64 - self.params.first_level_bits)) as usize
    }

    #[inline]
    fn sub_key(&self, key: Key) -> u64 {
        key & mask64(self.m_total)
    }

    #[inline]
    fn dir_index(dir: &CDir, sk: u64, m_total: u32) -> usize {
        (sk >> (m_total - dir.global_depth)) as usize
    }

    #[inline]
    fn snap_index(snap: &DirSnapshot, sk: u64, m_total: u32) -> usize {
        (sk >> (m_total - snap.global_depth)) as usize
    }

    /// Whether reads should try the optimistic path first.
    #[inline]
    fn optimistic_enabled(&self) -> bool {
        // relaxed: mode toggle, see `set_locked_reads`.
        !self.locked_reads.load(Ordering::Relaxed)
    }

    /// Optimistic `get`: snapshot → seqlock-validated segment probe.
    /// `None` means "retry budget exhausted — take the locked path".
    fn get_optimistic(&self, table: &CEh, sk: u64, key: Key) -> Option<Option<Value>> {
        let guard = self.epoch.pin()?;
        let mut retries = 0u64;
        let mut result = None;
        // justified: bounded by READ_RETRIES, with a locked fallback in
        // the caller when the budget is exhausted.
        for _ in 0..READ_RETRIES {
            let snap = table.snap.load(&guard);
            let cseg = &snap.entries[Self::snap_index(snap, sk, self.m_total)];
            let v0 = cseg.version.load(Ordering::SeqCst);
            if v0 & 1 == 1 {
                retries += 1; // Writer mid-mutation: don't even try the lock.
                continue;
            }
            let Some(seg) = cseg.data.try_read() else {
                retries += 1; // Writer holds the segment.
                continue;
            };
            if cseg.retired.load(Ordering::SeqCst) {
                retries += 1; // Stale snapshot: reload and re-route.
                continue;
            }
            let v = seg.get(sk, key, self.m_total, &self.params);
            drop(seg);
            if cseg.version.load(Ordering::SeqCst) == v0 {
                result = Some(v);
                break;
            }
            retries += 1; // Segment mutated while we probed.
        }
        if retries > 0 {
            // relaxed: monotonic advisory counter.
            self.read_retries.fetch_add(retries, Ordering::Relaxed);
            obs::counter!("read.retries").add(retries);
        }
        result
    }

    /// Locked `get`: the original §3.4 two-lock path, kept as the
    /// fallback and as the read-scaling baseline.
    fn get_locked(&self, table: &CEh, sk: u64, key: Key) -> Option<Value> {
        // relaxed: monotonic advisory counter.
        self.read_locked.fetch_add(1, Ordering::Relaxed);
        let dir = table.dir.read();
        let seg = dir.entries[Self::dir_index(&dir, sk, self.m_total)]
            .data
            .read();
        seg.get(sk, key, self.m_total, &self.params)
    }

    /// Fast-path insert under directory read lock + segment write lock.
    /// Returns `true` when the insert (or in-place update) completed, or
    /// `false` when structural maintenance under the directory write lock is
    /// required (split or doubling).
    fn insert_fast(&self, table: &CEh, sk: u64, key: Key, value: Value) -> bool {
        let p = &self.params;
        // justified: each retry either inserts or observes a full bucket
        // and performs (or defers to `maintain` for) a structural repair;
        // repairs strictly grow capacity, so the loop terminates.
        loop {
            let dir = table.dir.read();
            let gd = dir.global_depth;
            let cseg = Arc::clone(&dir.entries[Self::dir_index(&dir, sk, self.m_total)]);
            let mut seg = cseg.write();
            let ld = seg.local_depth;
            let m = self.m_total - ld;
            let k = sk & mask64(m);
            let b = seg.bucket_of(k, self.m_total);
            match seg.upsert_in_bucket(b, key, value, p.bucket_entries) {
                BucketUpsert::Updated => return true,
                BucketUpsert::Inserted => {
                    // Release pairs with the Acquire loads in `len()` and the
                    // audit so key-count accounting observes the insert.
                    table.num_keys.fetch_add(1, Ordering::Release);
                    return true;
                }
                BucketUpsert::Full => {}
            }
            // Bucket full. Segment-local fixes (remapping, expansion) are
            // legal here; splits and doubling need the directory write lock.
            if ld < p.l_start {
                return false; // Warm-up split/doubling path.
            }
            let cap_buckets = p.segment_cap(ld, dir.active_limit_mult);
            let high = seg.utilization(p) > p.utilization_threshold;
            if ld < gd {
                if high {
                    return false; // Split.
                }
                match seg.remap_adjust(k, self.m_total, cap_buckets, p) {
                    RemapOutcome::Failed => return false, // Split.
                    _ => {
                        // relaxed: monotonic stats counter; reads happen
                        // under the directory write lock (see `maintain`).
                        table.remaps.fetch_add(1, Ordering::Relaxed);
                        obs::counter!("cdytis.remap").inc();
                        continue; // Retry the insert.
                    }
                }
            } else {
                let ok = if high {
                    let ok = seg.expand(self.m_total, cap_buckets, p);
                    if ok {
                        // relaxed: monotonic stats counter; reads happen
                        // under the directory write lock (see `maintain`).
                        table.expansions.fetch_add(1, Ordering::Relaxed);
                        obs::counter!("cdytis.expand").inc();
                    }
                    ok
                } else {
                    let ok =
                        seg.remap_adjust(k, self.m_total, cap_buckets, p) != RemapOutcome::Failed;
                    if ok {
                        // relaxed: monotonic stats counter; reads happen
                        // under the directory write lock (see `maintain`).
                        table.remaps.fetch_add(1, Ordering::Relaxed);
                        obs::counter!("cdytis.remap").inc();
                    }
                    ok
                };
                if !ok {
                    return false; // Directory doubling.
                }
                // Retry the insert with the adjusted segment.
            }
        }
    }

    /// Slow path: performs one structural step (split or doubling) under the
    /// directory write lock, then returns so the fast path can retry.
    fn maintain(&self, table: &CEh, sk: u64) {
        let p = &self.params;
        let mut dir = table.dir.write();
        let idx = Self::dir_index(&dir, sk, self.m_total);
        let cseg = Arc::clone(&dir.entries[idx]);
        // Writers all hold the directory read lock while holding a segment
        // lock, so none can contend here; optimistic readers, however, may
        // hold this segment's read lock without any directory lock, so this
        // acquisition can block briefly. Readers never wait while holding a
        // segment guard, so no deadlock cycle can form.
        let seg = cseg.write();
        let ld = seg.local_depth;
        let m = self.m_total - ld;
        let k = sk & mask64(m);
        let b = seg.bucket_of(k, self.m_total);
        if seg.bucket_len(b) < p.bucket_entries {
            return; // Another thread already fixed it.
        }
        if ld == dir.global_depth {
            // Adaptive limit decision at doubling time (GD only grows here).
            if !dir.limit_decided && dir.global_depth + 1 >= p.l_start + 2 {
                dir.limit_decided = true;
                // relaxed: every increment happened under a directory read
                // lock, so holding the write lock here orders all of them
                // before these loads; the counters need no own ordering.
                let e = table.expansions.load(Ordering::Relaxed);
                // relaxed: same reasoning as the load above.
                let tot =
                    e + table.splits.load(Ordering::Relaxed) + table.remaps.load(Ordering::Relaxed);
                if tot > 0 && e as f64 / tot as f64 >= p.expansion_heavy_fraction {
                    dir.active_limit_mult = p.limit_mult_raised;
                }
            }
            let mut entries = Vec::with_capacity(dir.entries.len() * 2);
            for e in &dir.entries {
                entries.push(Arc::clone(e));
                entries.push(Arc::clone(e));
            }
            dir.entries = entries;
            dir.global_depth += 1;
            // relaxed: monotonic stats counter; reads happen under the
            // directory write lock (see the limit decision above).
            table.doublings.fetch_add(1, Ordering::Relaxed);
            obs::counter!("cdytis.double").inc();
        }
        // Split the segment (now LD < GD). The split copies into two fresh
        // segments and leaves the old one intact, so a reader still probing
        // it under a stale snapshot sees complete pre-split data.
        let (left, right) = seg.split(self.m_total, p);
        let gd = dir.global_depth;
        let span = 1usize << (gd - (ld + 1));
        let idx = Self::dir_index(&dir, sk, self.m_total);
        let base = idx & !(span * 2 - 1);
        let left = CSeg::new(left);
        let right = CSeg::new(right);
        for e in &mut dir.entries[base..base + span] {
            *e = Arc::clone(&left);
        }
        for e in &mut dir.entries[base + span..base + 2 * span] {
            *e = Arc::clone(&right);
        }
        dir.generation += 1;
        // Publication order matters: mark the victim retired, publish the
        // new snapshot (retiring the old one through the collector), and
        // only then release the victim's write lock (when `seg` drops).
        // A reader that wins `try_read` on the old segment after that
        // release is guaranteed to observe `retired` and reload a snapshot
        // that routes around it.
        cseg.retired.store(true, Ordering::SeqCst);
        table.publish(&dir, &self.epoch);
        drop(seg);
        // relaxed: monotonic stats counter; reads happen under the
        // directory write lock (see the limit decision above).
        table.splits.fetch_add(1, Ordering::Relaxed);
        obs::counter!("cdytis.split").inc();
    }

    /// One optimistic attempt at scanning `table` from `start_sk`.
    /// `Some(done)` on success; `None` when any segment probe failed
    /// validation (the table's contribution has been rolled back).
    #[allow(clippy::too_many_arguments)]
    fn scan_table_optimistic(
        &self,
        table: &CEh,
        guard: &Guard<'_>,
        start_sk: u64,
        start_key: Key,
        from_start: bool,
        count: usize,
        out: &mut Vec<(Key, Value)>,
    ) -> Option<bool> {
        let base_len = out.len();
        // Acquire pairs with the Release increments so a table observed
        // non-empty has its inserts visible to the probes below.
        if table.num_keys.load(Ordering::Acquire) == 0 {
            return Some(out.len() >= count);
        }
        let snap = table.snap.load(guard);
        let mut idx = if from_start {
            0
        } else {
            Self::snap_index(snap, start_sk, self.m_total)
        };
        let mut first = !from_start;
        while idx < snap.entries.len() {
            let cseg = &snap.entries[idx];
            let v0 = cseg.version.load(Ordering::SeqCst);
            let probe = if v0 & 1 == 1 {
                None
            } else {
                cseg.data.try_read()
            };
            let Some(seg) = probe else {
                out.truncate(base_len);
                return None;
            };
            if cseg.retired.load(Ordering::SeqCst) {
                out.truncate(base_len);
                return None;
            }
            let span = 1usize << (snap.global_depth - seg.local_depth);
            // Align to the segment's first directory entry so each segment
            // is visited once.
            let (b, slot) = if first {
                let m = self.m_total - seg.local_depth;
                let k = start_sk & mask64(m);
                let b = seg.bucket_of(k, self.m_total);
                (b, seg.buckets[b].lower_bound(start_key))
            } else {
                (0, 0)
            };
            first = false;
            let done = seg.walk_from(b, slot, count, out).is_some();
            drop(seg);
            if cseg.version.load(Ordering::SeqCst) != v0 {
                out.truncate(base_len);
                return None;
            }
            if done {
                return Some(true);
            }
            idx = (idx & !(span - 1)) + span;
        }
        Some(out.len() >= count)
    }

    /// Locked scan of one table starting at `start_sk`; returns `true`
    /// when `count` pairs have been collected. Fallback path and
    /// read-scaling baseline.
    fn scan_table_locked(
        &self,
        table: &CEh,
        start_sk: u64,
        start_key: Key,
        from_start: bool,
        count: usize,
        out: &mut Vec<(Key, Value)>,
    ) -> bool {
        // relaxed: monotonic advisory counter.
        self.read_locked.fetch_add(1, Ordering::Relaxed);
        let dir = table.dir.read();
        // Acquire pairs with the Release increments so a table observed
        // non-empty has its inserts visible to the scan below.
        if table.num_keys.load(Ordering::Acquire) == 0 {
            return out.len() >= count;
        }
        let mut idx = if from_start {
            0
        } else {
            Self::dir_index(&dir, start_sk, self.m_total)
        };
        let mut first = !from_start;
        while idx < dir.entries.len() {
            let seg = dir.entries[idx].data.read();
            let span = 1usize << (dir.global_depth - seg.local_depth);
            // Align to the segment's first directory entry so each segment is
            // visited once.
            let (b, slot) = if first {
                let m = self.m_total - seg.local_depth;
                let k = start_sk & mask64(m);
                let b = seg.bucket_of(k, self.m_total);
                (b, seg.buckets[b].lower_bound(start_key))
            } else {
                (0, 0)
            };
            first = false;
            if seg.walk_from(b, slot, count, out).is_some() {
                return true;
            }
            idx = (idx & !(span - 1)) + span;
        }
        out.len() >= count
    }

    /// Scans one table, optimistic-first with a bounded restart budget and
    /// a locked fallback.
    fn scan_table(
        &self,
        table: &CEh,
        start_sk: u64,
        start_key: Key,
        from_start: bool,
        count: usize,
        out: &mut Vec<(Key, Value)>,
    ) -> bool {
        if self.optimistic_enabled() {
            if let Some(guard) = self.epoch.pin() {
                let mut restarts = 0u64;
                // justified: bounded by SCAN_RESTARTS, with the locked
                // fallback below when the budget is exhausted.
                for _ in 0..SCAN_RESTARTS {
                    match self.scan_table_optimistic(
                        table, &guard, start_sk, start_key, from_start, count, out,
                    ) {
                        Some(done) => {
                            if restarts > 0 {
                                // relaxed: monotonic advisory counter.
                                self.read_retries.fetch_add(restarts, Ordering::Relaxed);
                                obs::counter!("read.retries").add(restarts);
                            }
                            return done;
                        }
                        None => restarts += 1,
                    }
                }
                if restarts > 0 {
                    // relaxed: monotonic advisory counter.
                    self.read_retries.fetch_add(restarts, Ordering::Relaxed);
                    obs::counter!("read.retries").add(restarts);
                }
            }
            // relaxed: monotonic advisory counter.
            self.read_fallbacks.fetch_add(1, Ordering::Relaxed);
            obs::counter!("read.fallbacks").inc();
        }
        self.scan_table_locked(table, start_sk, start_key, from_start, count, out)
    }
}

impl Default for ConcurrentDyTis {
    fn default() -> Self {
        Self::new()
    }
}

impl ConcurrentKvIndex for ConcurrentDyTis {
    fn insert(&self, key: Key, value: Value) {
        let table = &self.tables[self.table_of(key)];
        let sk = self.sub_key(key);
        let mut guard = 0u32;
        while !self.insert_fast(table, sk, key, value) {
            guard += 1;
            assert!(guard < 10_000, "concurrent insert failed to converge");
            // relaxed: monotonic advisory counter (lock-acquisition retries).
            self.insert_retries.fetch_add(1, Ordering::Relaxed);
            obs::counter!("cdytis.insert_retries").inc();
            self.maintain(table, sk);
        }
    }

    fn get(&self, key: Key) -> Option<Value> {
        let table = &self.tables[self.table_of(key)];
        let sk = self.sub_key(key);
        if self.optimistic_enabled() {
            if let Some(v) = self.get_optimistic(table, sk, key) {
                return v;
            }
            // relaxed: monotonic advisory counter.
            self.read_fallbacks.fetch_add(1, Ordering::Relaxed);
            obs::counter!("read.fallbacks").inc();
        }
        self.get_locked(table, sk, key)
    }

    fn remove(&self, key: Key) -> Option<Value> {
        let table = &self.tables[self.table_of(key)];
        let sk = self.sub_key(key);
        let dir = table.dir.read();
        let mut seg = dir.entries[Self::dir_index(&dir, sk, self.m_total)].write();
        let m = self.m_total - seg.local_depth;
        let k = sk & mask64(m);
        let b = seg.bucket_of(k, self.m_total);
        let v = seg.remove_from_bucket(b, key)?;
        // Release pairs with the Acquire loads in `len()` and the audit.
        table.num_keys.fetch_sub(1, Ordering::Release);
        // Deletion merge (§3.3): a shrink only changes the segment object's
        // contents, so the segment write lock suffices (§3.4).
        if seg.total_buckets() > 1
            && seg.utilization(&self.params) < self.params.shrink_threshold
            && seg.shrink(self.m_total, &self.params)
        {
            // relaxed: monotonic stats counter, read after quiescence.
            table.shrinks.fetch_add(1, Ordering::Relaxed);
            obs::counter!("cdytis.shrink").inc();
        }
        Some(v)
    }

    fn scan(&self, start: Key, count: usize, out: &mut Vec<(Key, Value)>) {
        let first = self.table_of(start);
        let sk = self.sub_key(start);
        if self.scan_table(&self.tables[first], sk, start, false, count, out) {
            return;
        }
        for t in &self.tables[first + 1..] {
            if self.scan_table(t, 0, 0, true, count, out) {
                return;
            }
        }
    }

    fn len(&self) -> usize {
        self.tables
            .iter()
            // Acquire pairs with the Release key-count updates so `len()`
            // reflects every completed insert/remove.
            .map(|t| t.num_keys.load(Ordering::Acquire))
            .sum()
    }

    fn name(&self) -> &'static str {
        "DyTIS (concurrent)"
    }
}

impl Auditable for ConcurrentDyTis {
    /// Deep audit under the documented lock order: per table, the directory
    /// read lock is taken first, then each segment's read lock in directory
    /// order (one at a time). Must not be called by a thread already
    /// holding one of this index's locks.
    ///
    /// On top of the structural invariants, the audit checks the
    /// optimistic-read machinery: segment versions must be even while the
    /// auditor holds the segment read lock (`seg-version-even`), reachable
    /// segments must not be marked retired (`seg-live`), the published
    /// snapshot must mirror the live directory (`dir-snapshot-coherent`),
    /// and with no readers pinned a collect must leave no garbage behind
    /// (`epoch-quiescent`).
    fn audit(&self) -> AuditReport {
        let mut report = AuditReport::new("DyTIS (concurrent)");
        for (t, table) in self.tables.iter().enumerate() {
            let dir = table.dir.read();
            let gd = dir.global_depth;
            report.check(dir.entries.len() == 1usize << gd, "dir-size", || {
                (
                    format!("table {t}"),
                    format!("directory has {} entries at GD {gd}", dir.entries.len()),
                )
            });
            let mut total = 0usize;
            let mut last_key: Option<Key> = None;
            let mut idx = 0usize;
            while idx < dir.entries.len() {
                let cseg = &dir.entries[idx];
                let seg = cseg.data.read();
                // Holding the segment read lock excludes writers, whose
                // mutation window is exactly the odd-version window.
                let v = cseg.version.load(Ordering::SeqCst);
                report.check(v & 1 == 0, "seg-version-even", || {
                    (
                        format!("table {t} / dir[{idx}]"),
                        format!("version {v} is odd with no writer able to hold the lock"),
                    )
                });
                report.check(!cseg.retired.load(Ordering::SeqCst), "seg-live", || {
                    (
                        format!("table {t} / dir[{idx}]"),
                        "directory-reachable segment is marked retired".into(),
                    )
                });
                let ld = seg.local_depth;
                if !report.check(ld <= gd, "local-depth", || {
                    (
                        format!("table {t} / dir[{idx}]"),
                        format!("local_depth {ld} exceeds global_depth {gd}"),
                    )
                }) {
                    idx += 1;
                    continue;
                }
                let span = 1usize << (gd - ld);
                report.check(idx.is_multiple_of(span), "dir-alignment", || {
                    (
                        format!("table {t} / dir[{idx}]"),
                        format!("segment (span {span}) starts unaligned"),
                    )
                });
                let end = (idx + span).min(dir.entries.len());
                report.check(
                    dir.entries[idx..end]
                        .iter()
                        .all(|e| Arc::ptr_eq(e, &dir.entries[idx])),
                    "dir-coverage",
                    || {
                        (
                            format!("table {t} / dir[{idx}..{end}]"),
                            "span mixes directory targets".into(),
                        )
                    },
                );
                let loc = format!("table {t} / dir[{idx}]");
                crate::audit::audit_segment(&seg, self.m_total, &self.params, &loc, &mut report);
                if let Some((first, last)) = crate::audit::segment_key_bounds(&seg) {
                    let prefix = (idx / span) as u64;
                    let shift = self.m_total - ld;
                    for key in [first, last] {
                        let sk = key & mask64(self.m_total);
                        report.check(ld == 0 || sk >> shift == prefix, "key-range", || {
                            (
                                loc.clone(),
                                format!("key {key:#x} outside directory prefix {prefix:#x}"),
                            )
                        });
                    }
                    report.check(
                        last_key.is_none_or(|p| p < first),
                        "table-key-order",
                        || {
                            (
                                loc.clone(),
                                format!(
                                    "first key {first:#x} not above previous segment's {last_key:?}"
                                ),
                            )
                        },
                    );
                    last_key = Some(last);
                }
                total += seg.num_keys;
                idx += span;
            }
            report.check(
                total == table.num_keys.load(Ordering::Acquire),
                "table-key-count",
                || {
                    (
                        format!("table {t}"),
                        format!(
                            "segments hold {total} keys, table claims {}",
                            table.num_keys.load(Ordering::Acquire)
                        ),
                    )
                },
            );
            // Snapshot coherence: publishes happen under the directory
            // write lock, which our read lock excludes, so the published
            // snapshot must mirror the live directory exactly. Skipped only
            // if every epoch slot is busy (pure reader traffic).
            if let Some(guard) = self.epoch.pin() {
                let snap = table.snap.load(&guard);
                let coherent = snap.generation == dir.generation
                    && snap.global_depth == dir.global_depth
                    && snap.entries.len() == dir.entries.len()
                    && snap
                        .entries
                        .iter()
                        .zip(&dir.entries)
                        .all(|(a, b)| Arc::ptr_eq(a, b));
                report.check(coherent, "dir-snapshot-coherent", || {
                    (
                        format!("table {t}"),
                        format!(
                            "snapshot gen {} / GD {} / {} entries vs directory gen {} / GD {} / {} entries",
                            snap.generation,
                            snap.global_depth,
                            snap.entries.len(),
                            dir.generation,
                            dir.global_depth,
                            dir.entries.len()
                        ),
                    )
                });
            }
        }
        // Epoch quiescence: with no reader pinned, collecting must drain
        // the garbage list. Readers pinning concurrently legitimately defer
        // frees, so the check self-skips unless quiescence holds across the
        // collect (bounded re-tries absorb the transient races).
        // justified: bounded to 4 rounds, then the check is skipped.
        for _ in 0..4 {
            if !self.epoch.quiescent() {
                break;
            }
            self.epoch.collect();
            let pending = self.epoch.stats().pending;
            if !self.epoch.quiescent() {
                // A reader pinned mid-collect: the pending count is not
                // evidence of a leak. Retry the round.
                continue;
            }
            report.check(pending == 0, "epoch-quiescent", || {
                (
                    "epoch collector".into(),
                    format!("{pending} garbage item(s) survive a quiescent collect"),
                )
            });
            break;
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc as StdArc;

    fn small() -> ConcurrentDyTis {
        ConcurrentDyTis::with_params(Params::small())
    }

    #[test]
    fn single_thread_roundtrip() {
        let idx = small();
        for k in 0..6_000u64 {
            idx.insert(k * 3, k);
        }
        assert_eq!(idx.len(), 6_000);
        for k in (0..6_000u64).step_by(77) {
            assert_eq!(idx.get(k * 3), Some(k));
        }
        let mut out = Vec::new();
        idx.scan(0, 1_000, &mut out);
        assert_eq!(out.len(), 1_000);
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn locked_read_mode_matches_optimistic() {
        let idx = small();
        for k in 0..6_000u64 {
            idx.insert(k.wrapping_mul(0x9E3779B97F4A7C15), k);
        }
        idx.set_locked_reads(true);
        for k in (0..6_000u64).step_by(31) {
            assert_eq!(idx.get(k.wrapping_mul(0x9E3779B97F4A7C15)), Some(k));
        }
        let mut locked = Vec::new();
        idx.scan(0, 500, &mut locked);
        idx.set_locked_reads(false);
        for k in (0..6_000u64).step_by(31) {
            assert_eq!(idx.get(k.wrapping_mul(0x9E3779B97F4A7C15)), Some(k));
        }
        let mut optimistic = Vec::new();
        idx.scan(0, 500, &mut optimistic);
        assert_eq!(locked, optimistic);
    }

    #[test]
    fn maintenance_retires_snapshots_through_the_collector() {
        let idx = small();
        for k in 0..6_000u64 {
            idx.insert(k * 3, k);
        }
        let st = idx.epoch_stats();
        assert!(
            st.deferred > 0,
            "splits/doublings must retire old snapshots"
        );
        assert_eq!(
            st.freed, st.deferred,
            "no reader pinned: everything must be freed"
        );
        assert_eq!(st.pending, 0);
    }

    #[test]
    fn concurrent_disjoint_inserts() {
        let idx = StdArc::new(small());
        let threads = 4;
        let per = 10_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let idx = StdArc::clone(&idx);
                std::thread::spawn(move || {
                    for i in 0..per {
                        let k = (t as u64) * per + i;
                        idx.insert(k.wrapping_mul(0x9E3779B97F4A7C15), k);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(idx.len(), threads as usize * per as usize);
        for t in 0..threads as u64 {
            for i in (0..per).step_by(97) {
                let k = t * per + i;
                assert_eq!(idx.get(k.wrapping_mul(0x9E3779B97F4A7C15)), Some(k));
            }
        }
    }

    #[test]
    fn concurrent_overlapping_upserts() {
        let idx = StdArc::new(small());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let idx = StdArc::clone(&idx);
                std::thread::spawn(move || {
                    for i in 0..5_000u64 {
                        idx.insert(i, i + 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(idx.len(), 5_000);
        for i in (0..5_000u64).step_by(53) {
            assert_eq!(idx.get(i), Some(i + 1));
        }
    }

    #[test]
    fn concurrent_readers_and_writers() {
        let idx = StdArc::new(small());
        for i in 0..5_000u64 {
            idx.insert(i * 2, i);
        }
        let writer = {
            let idx = StdArc::clone(&idx);
            std::thread::spawn(move || {
                for i in 5_000..15_000u64 {
                    idx.insert(i * 2, i);
                }
            })
        };
        let reader = {
            let idx = StdArc::clone(&idx);
            std::thread::spawn(move || {
                let mut hits = 0;
                for _ in 0..3 {
                    for i in 0..5_000u64 {
                        if idx.get(i * 2) == Some(i) {
                            hits += 1;
                        }
                    }
                }
                hits
            })
        };
        let scanner = {
            let idx = StdArc::clone(&idx);
            std::thread::spawn(move || {
                let mut out = Vec::new();
                for _ in 0..50 {
                    out.clear();
                    idx.scan(0, 100, &mut out);
                    assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
                }
            })
        };
        writer.join().unwrap();
        assert_eq!(reader.join().unwrap(), 15_000);
        scanner.join().unwrap();
        assert_eq!(idx.len(), 15_000);
    }

    #[test]
    fn audit_clean_after_concurrent_growth() {
        let idx = StdArc::new(small());
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let idx = StdArc::clone(&idx);
                std::thread::spawn(move || {
                    for i in 0..5_000u64 {
                        idx.insert((t * 5_000 + i).wrapping_mul(0x9E3779B97F4A7C15), i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("writer");
        }
        let report = idx.audit();
        assert!(report.checks > 20_000);
        report.assert_clean();
    }

    #[test]
    fn audit_detects_corrupted_segment_key_count() {
        let idx = small();
        for k in 0..2_000u64 {
            idx.insert(k, k);
        }
        idx.audit().assert_clean();
        {
            let dir = idx.tables[0].dir.read();
            let mut seg = dir.entries[0].data.write();
            seg.num_keys += 1;
        }
        let report = idx.audit();
        assert!(!report.is_clean());
        assert!(report
            .violations
            .iter()
            .any(|v| v.invariant == "segment-key-count" || v.invariant == "table-key-count"));
    }

    #[test]
    fn audit_detects_torn_segment_version() {
        let idx = small();
        for k in 0..2_000u64 {
            idx.insert(k, k);
        }
        idx.audit().assert_clean();
        // SEEDED CORRUPTION: leave a version odd with no writer present, as
        // if a mutation window never closed.
        {
            let dir = idx.tables[0].dir.read();
            dir.entries[0].version.fetch_add(1, Ordering::SeqCst);
        }
        let report = idx.audit();
        assert!(report
            .violations
            .iter()
            .any(|v| v.invariant == "seg-version-even"));
    }

    #[test]
    fn audit_detects_retired_live_segment() {
        let idx = small();
        for k in 0..2_000u64 {
            idx.insert(k, k);
        }
        idx.audit().assert_clean();
        // SEEDED CORRUPTION: a reachable segment must never be retired.
        {
            let dir = idx.tables[0].dir.read();
            dir.entries[0].retired.store(true, Ordering::SeqCst);
        }
        let report = idx.audit();
        assert!(report.violations.iter().any(|v| v.invariant == "seg-live"));
    }

    #[test]
    fn audit_detects_stale_snapshot() {
        let idx = small();
        for k in 0..2_000u64 {
            idx.insert(k, k);
        }
        idx.audit().assert_clean();
        // SEEDED CORRUPTION: publish a snapshot that does not mirror the
        // live directory (wrong generation, truncated entries).
        {
            let dir = idx.tables[0].dir.read();
            idx.tables[0].snap.swap(
                Box::new(DirSnapshot {
                    generation: dir.generation + 999,
                    global_depth: dir.global_depth,
                    entries: dir.entries.clone(),
                }),
                &idx.epoch,
            );
        }
        let report = idx.audit();
        assert!(report
            .violations
            .iter()
            .any(|v| v.invariant == "dir-snapshot-coherent"));
    }

    #[test]
    fn audit_detects_unreclaimed_epoch_garbage() {
        let idx = small();
        for k in 0..2_000u64 {
            idx.insert(k, k);
        }
        idx.audit().assert_clean();
        // SEEDED CORRUPTION: garbage stamped so no collect can free it —
        // the audit's quiescent collect must notice the leak.
        idx.epoch.retire_uncollectable(Box::new(0u64));
        let report = idx.audit();
        assert!(report
            .violations
            .iter()
            .any(|v| v.invariant == "epoch-quiescent"));
    }

    #[test]
    fn read_hammer_fires_retries_and_deferred_frees() {
        // Writer splits/doubles under tiny geometry while readers spin:
        // the optimistic machinery must demonstrably fire, not idle.
        let idx = StdArc::new(small());
        for i in 0..2_000u64 {
            idx.insert(i * 4, i);
        }
        let stop = StdArc::new(std::sync::atomic::AtomicBool::new(false));
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let idx = StdArc::clone(&idx);
                let stop = StdArc::clone(&stop);
                std::thread::spawn(move || {
                    let mut out = Vec::new();
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        for i in (0..2_000u64).step_by(7) {
                            assert_eq!(idx.get(i * 4), Some(i));
                        }
                        out.clear();
                        idx.scan(0, 64, &mut out);
                        assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
                    }
                })
            })
            .collect();
        for i in 2_000..30_000u64 {
            idx.insert(i * 4 + 1, i);
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        let st = idx.epoch_stats();
        assert!(st.deferred > 0, "maintenance must retire snapshots");
        idx.audit().assert_clean();
    }

    #[test]
    fn remove_concurrent_smoke() {
        let idx = small();
        for i in 0..1_000u64 {
            idx.insert(i, i);
        }
        for i in 0..500u64 {
            assert_eq!(idx.remove(i), Some(i));
        }
        assert_eq!(idx.len(), 500);
        assert_eq!(idx.remove(0), None);
    }
}
