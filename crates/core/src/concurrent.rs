//! Concurrent DyTIS (§3.4).
//!
//! The paper adopts two-level locking per EH table: a high-level lock on the
//! directory array and low-level reader/writer locks per segment.
//! Operations that only change the contents of one segment object — normal
//! insert, remapping, expansion, search, scan — synchronize at the segment
//! level (under a directory *read* lock so the directory cannot move
//! underneath them); operations that change the structure — split and
//! directory doubling — take the directory *write* lock.
//!
//! Because every segment-lock holder also holds the directory read lock, a
//! thread holding the directory write lock knows no other thread holds any
//! segment lock, making structural surgery safe.
//!
//! Sibling navigation for scans walks the directory (equivalent order to the
//! single-threaded sibling pointers) while holding the directory read lock.

use crate::params::Params;
use crate::remap::mask64;
use crate::segment::{BucketUpsert, RemapOutcome, Segment};
use crate::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use crate::sync::{Arc, RwLock};
use index_traits::{AuditReport, Auditable, ConcurrentKvIndex, Key, Value};

/// Directory of one concurrent EH table.
struct CDir {
    global_depth: u32,
    entries: Vec<Arc<RwLock<Segment>>>,
    /// Active segment-size limit multiplier (adaptive, §3.3).
    active_limit_mult: u32,
    limit_decided: bool,
}

/// One concurrent EH table: directory lock + per-segment locks.
struct CEh {
    dir: RwLock<CDir>,
    num_keys: AtomicUsize,
    splits: AtomicU64,
    expansions: AtomicU64,
    remaps: AtomicU64,
    doublings: AtomicU64,
    shrinks: AtomicU64,
}

/// The multi-threaded DyTIS index (used by the Figure 12 evaluation).
pub struct ConcurrentDyTis {
    params: Params,
    tables: Vec<CEh>,
    m_total: u32,
    /// Times an insert lost its fast path to contention or a pending
    /// structural fix and had to retry through `maintain`.
    insert_retries: AtomicU64,
}

impl ConcurrentDyTis {
    /// Creates an index with the paper's default parameters.
    pub fn new() -> Self {
        Self::with_params(Params::default())
    }

    /// Creates an index with explicit [`Params`].
    ///
    /// # Panics
    ///
    /// Panics if `first_level_bits` is outside `1..=16`.
    pub fn with_params(params: Params) -> Self {
        let r = params.first_level_bits;
        assert!((1..=16).contains(&r));
        let m_total = 64 - r;
        let tables = (0..(1usize << r))
            .map(|_| CEh {
                dir: RwLock::new(CDir {
                    global_depth: 0,
                    entries: vec![Arc::new(RwLock::new(Segment::new(0)))],
                    active_limit_mult: params.limit_mult,
                    limit_decided: false,
                }),
                num_keys: AtomicUsize::new(0),
                splits: AtomicU64::new(0),
                expansions: AtomicU64::new(0),
                remaps: AtomicU64::new(0),
                doublings: AtomicU64::new(0),
                shrinks: AtomicU64::new(0),
            })
            .collect();
        ConcurrentDyTis {
            params,
            tables,
            m_total,
            insert_retries: AtomicU64::new(0),
        }
    }

    /// Totals of the structural maintenance operations performed so far
    /// (splits, segment expansions, remaps, directory doublings, shrinks),
    /// summed over all first-level tables.  Exact once writers have
    /// quiesced.  `keys_moved` is not tracked by the concurrent variant and
    /// reads 0.
    pub fn maintenance_stats(&self) -> index_traits::MaintenanceStats {
        let mut s = index_traits::MaintenanceStats::default();
        for t in &self.tables {
            // relaxed: monotonic advisory counters; exact totals are only
            // required after the writing threads have been joined.
            s.splits += t.splits.load(Ordering::Relaxed);
            // relaxed: see above.
            s.expansions += t.expansions.load(Ordering::Relaxed);
            // relaxed: see above.
            s.remaps += t.remaps.load(Ordering::Relaxed);
            // relaxed: see above.
            s.doublings += t.doublings.load(Ordering::Relaxed);
            // relaxed: see above.
            s.shrinks += t.shrinks.load(Ordering::Relaxed);
        }
        s
    }

    /// Times an insert had to retry through the slow path (see field doc).
    pub fn insert_retries(&self) -> u64 {
        // relaxed: monotonic advisory counter.
        self.insert_retries.load(Ordering::Relaxed)
    }

    /// Intentionally broken insert, compiled only for model checking:
    /// proves the loom models are non-vacuous.
    ///
    /// Identical to [`ConcurrentKvIndex::insert`] except the table key
    /// count is bumped *after* the segment lock is dropped, and with a
    /// torn `load`+`store` instead of `fetch_add` — the "it's just a
    /// counter" shortcut the §3.4 protocol forbids. The loom model in
    /// `tests/loom_models.rs` must find the two-thread schedule where one
    /// increment is lost (`len()` under-counts, the `table-key-count`
    /// audit trips). Callers must pick keys that fit the existing buckets;
    /// the maintenance slow path is deliberately not reproduced here.
    #[cfg(loom)]
    pub fn insert_seeded_torn_counter(&self, key: Key, value: Value) {
        let table = &self.tables[self.table_of(key)];
        let sk = self.sub_key(key);
        let p = &self.params;
        let inserted = {
            let dir = table.dir.read();
            let seg_arc = Arc::clone(&dir.entries[Self::dir_index(&dir, sk, self.m_total)]);
            let mut seg = seg_arc.write();
            let m = self.m_total - seg.local_depth;
            let k = sk & mask64(m);
            let b = seg.bucket_of(k, self.m_total);
            match seg.upsert_in_bucket(b, key, value, p.bucket_entries) {
                BucketUpsert::Inserted => true,
                BucketUpsert::Updated => false,
                BucketUpsert::Full => panic!("seeded-bug insert requires a key that fits"),
            }
        };
        if inserted {
            // BUG (seeded): torn read-modify-write outside the critical
            // section — a concurrent insert between the load and the store
            // loses an increment.
            let n = table.num_keys.load(Ordering::Acquire);
            table.num_keys.store(n + 1, Ordering::Release);
        }
    }

    #[inline]
    fn table_of(&self, key: Key) -> usize {
        (key >> (64 - self.params.first_level_bits)) as usize
    }

    #[inline]
    fn sub_key(&self, key: Key) -> u64 {
        key & mask64(self.m_total)
    }

    #[inline]
    fn dir_index(dir: &CDir, sk: u64, m_total: u32) -> usize {
        (sk >> (m_total - dir.global_depth)) as usize
    }

    /// Fast-path insert under directory read lock + segment write lock.
    /// Returns `true` when the insert (or in-place update) completed, or
    /// `false` when structural maintenance under the directory write lock is
    /// required (split or doubling).
    fn insert_fast(&self, table: &CEh, sk: u64, key: Key, value: Value) -> bool {
        let p = &self.params;
        // justified: each retry either inserts or observes a full bucket
        // and performs (or defers to `maintain` for) a structural repair;
        // repairs strictly grow capacity, so the loop terminates.
        loop {
            let dir = table.dir.read();
            let gd = dir.global_depth;
            let seg_arc = Arc::clone(&dir.entries[Self::dir_index(&dir, sk, self.m_total)]);
            let mut seg = seg_arc.write();
            let ld = seg.local_depth;
            let m = self.m_total - ld;
            let k = sk & mask64(m);
            let b = seg.bucket_of(k, self.m_total);
            match seg.upsert_in_bucket(b, key, value, p.bucket_entries) {
                BucketUpsert::Updated => return true,
                BucketUpsert::Inserted => {
                    // Release pairs with the Acquire loads in `len()` and the
                    // audit so key-count accounting observes the insert.
                    table.num_keys.fetch_add(1, Ordering::Release);
                    return true;
                }
                BucketUpsert::Full => {}
            }
            // Bucket full. Segment-local fixes (remapping, expansion) are
            // legal here; splits and doubling need the directory write lock.
            if ld < p.l_start {
                return false; // Warm-up split/doubling path.
            }
            let cap_buckets = p.segment_cap(ld, dir.active_limit_mult);
            let high = seg.utilization(p) > p.utilization_threshold;
            if ld < gd {
                if high {
                    return false; // Split.
                }
                match seg.remap_adjust(k, self.m_total, cap_buckets, p) {
                    RemapOutcome::Failed => return false, // Split.
                    _ => {
                        // relaxed: monotonic stats counter; reads happen
                        // under the directory write lock (see `maintain`).
                        table.remaps.fetch_add(1, Ordering::Relaxed);
                        obs::counter!("cdytis.remap").inc();
                        continue; // Retry the insert.
                    }
                }
            } else {
                let ok = if high {
                    let ok = seg.expand(self.m_total, cap_buckets, p);
                    if ok {
                        // relaxed: monotonic stats counter; reads happen
                        // under the directory write lock (see `maintain`).
                        table.expansions.fetch_add(1, Ordering::Relaxed);
                        obs::counter!("cdytis.expand").inc();
                    }
                    ok
                } else {
                    let ok =
                        seg.remap_adjust(k, self.m_total, cap_buckets, p) != RemapOutcome::Failed;
                    if ok {
                        // relaxed: monotonic stats counter; reads happen
                        // under the directory write lock (see `maintain`).
                        table.remaps.fetch_add(1, Ordering::Relaxed);
                        obs::counter!("cdytis.remap").inc();
                    }
                    ok
                };
                if !ok {
                    return false; // Directory doubling.
                }
                // Retry the insert with the adjusted segment.
            }
        }
    }

    /// Slow path: performs one structural step (split or doubling) under the
    /// directory write lock, then returns so the fast path can retry.
    fn maintain(&self, table: &CEh, sk: u64) {
        let p = &self.params;
        let mut dir = table.dir.write();
        let idx = Self::dir_index(&dir, sk, self.m_total);
        let seg_arc = Arc::clone(&dir.entries[idx]);
        // SAFETY-free reasoning: holding the directory write lock means no
        // other thread holds a directory read lock, hence no other thread
        // holds any segment lock of this table; this write lock cannot block.
        let seg = seg_arc.write();
        let ld = seg.local_depth;
        let m = self.m_total - ld;
        let k = sk & mask64(m);
        let b = seg.bucket_of(k, self.m_total);
        if seg.bucket_len(b) < p.bucket_entries {
            return; // Another thread already fixed it.
        }
        if ld == dir.global_depth {
            // Adaptive limit decision at doubling time (GD only grows here).
            if !dir.limit_decided && dir.global_depth + 1 >= p.l_start + 2 {
                dir.limit_decided = true;
                // relaxed: every increment happened under a directory read
                // lock, so holding the write lock here orders all of them
                // before these loads; the counters need no own ordering.
                let e = table.expansions.load(Ordering::Relaxed);
                // relaxed: same reasoning as the load above.
                let tot =
                    e + table.splits.load(Ordering::Relaxed) + table.remaps.load(Ordering::Relaxed);
                if tot > 0 && e as f64 / tot as f64 >= p.expansion_heavy_fraction {
                    dir.active_limit_mult = p.limit_mult_raised;
                }
            }
            let mut entries = Vec::with_capacity(dir.entries.len() * 2);
            for e in &dir.entries {
                entries.push(Arc::clone(e));
                entries.push(Arc::clone(e));
            }
            dir.entries = entries;
            dir.global_depth += 1;
            // relaxed: monotonic stats counter; reads happen under the
            // directory write lock (see the limit decision above).
            table.doublings.fetch_add(1, Ordering::Relaxed);
            obs::counter!("cdytis.double").inc();
        }
        // Split the segment (now LD < GD).
        let (left, right) = seg.split(self.m_total, p);
        drop(seg);
        let gd = dir.global_depth;
        let span = 1usize << (gd - (ld + 1));
        let idx = Self::dir_index(&dir, sk, self.m_total);
        let base = idx & !(span * 2 - 1);
        let left = Arc::new(RwLock::new(left));
        let right = Arc::new(RwLock::new(right));
        for e in &mut dir.entries[base..base + span] {
            *e = Arc::clone(&left);
        }
        for e in &mut dir.entries[base + span..base + 2 * span] {
            *e = Arc::clone(&right);
        }
        // relaxed: monotonic stats counter; reads happen under the
        // directory write lock (see the limit decision above).
        table.splits.fetch_add(1, Ordering::Relaxed);
        obs::counter!("cdytis.split").inc();
    }

    /// Scans one table starting at `start_sk`; returns `true` when `count`
    /// pairs have been collected.
    fn scan_table(
        &self,
        table: &CEh,
        start_sk: u64,
        start_key: Key,
        from_start: bool,
        count: usize,
        out: &mut Vec<(Key, Value)>,
    ) -> bool {
        let dir = table.dir.read();
        // Acquire pairs with the Release increments so a table observed
        // non-empty has its inserts visible to the scan below.
        if table.num_keys.load(Ordering::Acquire) == 0 {
            return out.len() >= count;
        }
        let mut idx = if from_start {
            0
        } else {
            Self::dir_index(&dir, start_sk, self.m_total)
        };
        let mut first = !from_start;
        while idx < dir.entries.len() {
            let seg = dir.entries[idx].read();
            let span = 1usize << (dir.global_depth - seg.local_depth);
            // Align to the segment's first directory entry so each segment is
            // visited once.
            let (b, slot) = if first {
                let m = self.m_total - seg.local_depth;
                let k = start_sk & mask64(m);
                let b = seg.bucket_of(k, self.m_total);
                (b, seg.buckets[b].lower_bound(start_key))
            } else {
                (0, 0)
            };
            first = false;
            if seg.walk_from(b, slot, count, out).is_some() {
                return true;
            }
            idx = (idx & !(span - 1)) + span;
        }
        out.len() >= count
    }
}

impl Default for ConcurrentDyTis {
    fn default() -> Self {
        Self::new()
    }
}

impl ConcurrentKvIndex for ConcurrentDyTis {
    fn insert(&self, key: Key, value: Value) {
        let table = &self.tables[self.table_of(key)];
        let sk = self.sub_key(key);
        let mut guard = 0u32;
        while !self.insert_fast(table, sk, key, value) {
            guard += 1;
            assert!(guard < 10_000, "concurrent insert failed to converge");
            // relaxed: monotonic advisory counter (lock-acquisition retries).
            self.insert_retries.fetch_add(1, Ordering::Relaxed);
            obs::counter!("cdytis.insert_retries").inc();
            self.maintain(table, sk);
        }
    }

    fn get(&self, key: Key) -> Option<Value> {
        let table = &self.tables[self.table_of(key)];
        let sk = self.sub_key(key);
        let dir = table.dir.read();
        let seg = dir.entries[Self::dir_index(&dir, sk, self.m_total)].read();
        seg.get(sk, key, self.m_total, &self.params)
    }

    fn remove(&self, key: Key) -> Option<Value> {
        let table = &self.tables[self.table_of(key)];
        let sk = self.sub_key(key);
        let dir = table.dir.read();
        let mut seg = dir.entries[Self::dir_index(&dir, sk, self.m_total)].write();
        let m = self.m_total - seg.local_depth;
        let k = sk & mask64(m);
        let b = seg.bucket_of(k, self.m_total);
        let v = seg.remove_from_bucket(b, key)?;
        // Release pairs with the Acquire loads in `len()` and the audit.
        table.num_keys.fetch_sub(1, Ordering::Release);
        // Deletion merge (§3.3): a shrink only changes the segment object's
        // contents, so the segment write lock suffices (§3.4).
        if seg.total_buckets() > 1
            && seg.utilization(&self.params) < self.params.shrink_threshold
            && seg.shrink(self.m_total, &self.params)
        {
            // relaxed: monotonic stats counter, read after quiescence.
            table.shrinks.fetch_add(1, Ordering::Relaxed);
            obs::counter!("cdytis.shrink").inc();
        }
        Some(v)
    }

    fn scan(&self, start: Key, count: usize, out: &mut Vec<(Key, Value)>) {
        let first = self.table_of(start);
        let sk = self.sub_key(start);
        if self.scan_table(&self.tables[first], sk, start, false, count, out) {
            return;
        }
        for t in &self.tables[first + 1..] {
            if self.scan_table(t, 0, 0, true, count, out) {
                return;
            }
        }
    }

    fn len(&self) -> usize {
        self.tables
            .iter()
            // Acquire pairs with the Release key-count updates so `len()`
            // reflects every completed insert/remove.
            .map(|t| t.num_keys.load(Ordering::Acquire))
            .sum()
    }

    fn name(&self) -> &'static str {
        "DyTIS (concurrent)"
    }
}

impl Auditable for ConcurrentDyTis {
    /// Deep audit under the documented lock order: per table, the directory
    /// read lock is taken first, then each segment's read lock in directory
    /// order (one at a time). Must not be called by a thread already
    /// holding one of this index's locks.
    fn audit(&self) -> AuditReport {
        let mut report = AuditReport::new("DyTIS (concurrent)");
        for (t, table) in self.tables.iter().enumerate() {
            let dir = table.dir.read();
            let gd = dir.global_depth;
            report.check(dir.entries.len() == 1usize << gd, "dir-size", || {
                (
                    format!("table {t}"),
                    format!("directory has {} entries at GD {gd}", dir.entries.len()),
                )
            });
            let mut total = 0usize;
            let mut last_key: Option<Key> = None;
            let mut idx = 0usize;
            while idx < dir.entries.len() {
                let seg = dir.entries[idx].read();
                let ld = seg.local_depth;
                if !report.check(ld <= gd, "local-depth", || {
                    (
                        format!("table {t} / dir[{idx}]"),
                        format!("local_depth {ld} exceeds global_depth {gd}"),
                    )
                }) {
                    idx += 1;
                    continue;
                }
                let span = 1usize << (gd - ld);
                report.check(idx.is_multiple_of(span), "dir-alignment", || {
                    (
                        format!("table {t} / dir[{idx}]"),
                        format!("segment (span {span}) starts unaligned"),
                    )
                });
                let end = (idx + span).min(dir.entries.len());
                report.check(
                    dir.entries[idx..end]
                        .iter()
                        .all(|e| Arc::ptr_eq(e, &dir.entries[idx])),
                    "dir-coverage",
                    || {
                        (
                            format!("table {t} / dir[{idx}..{end}]"),
                            "span mixes directory targets".into(),
                        )
                    },
                );
                let loc = format!("table {t} / dir[{idx}]");
                crate::audit::audit_segment(&seg, self.m_total, &self.params, &loc, &mut report);
                if let Some((first, last)) = crate::audit::segment_key_bounds(&seg) {
                    let prefix = (idx / span) as u64;
                    let shift = self.m_total - ld;
                    for key in [first, last] {
                        let sk = key & mask64(self.m_total);
                        report.check(ld == 0 || sk >> shift == prefix, "key-range", || {
                            (
                                loc.clone(),
                                format!("key {key:#x} outside directory prefix {prefix:#x}"),
                            )
                        });
                    }
                    report.check(
                        last_key.is_none_or(|p| p < first),
                        "table-key-order",
                        || {
                            (
                                loc.clone(),
                                format!(
                                    "first key {first:#x} not above previous segment's {last_key:?}"
                                ),
                            )
                        },
                    );
                    last_key = Some(last);
                }
                total += seg.num_keys;
                idx += span;
            }
            report.check(
                total == table.num_keys.load(Ordering::Acquire),
                "table-key-count",
                || {
                    (
                        format!("table {t}"),
                        format!(
                            "segments hold {total} keys, table claims {}",
                            table.num_keys.load(Ordering::Acquire)
                        ),
                    )
                },
            );
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc as StdArc;

    fn small() -> ConcurrentDyTis {
        ConcurrentDyTis::with_params(Params::small())
    }

    #[test]
    fn single_thread_roundtrip() {
        let idx = small();
        for k in 0..6_000u64 {
            idx.insert(k * 3, k);
        }
        assert_eq!(idx.len(), 6_000);
        for k in (0..6_000u64).step_by(77) {
            assert_eq!(idx.get(k * 3), Some(k));
        }
        let mut out = Vec::new();
        idx.scan(0, 1_000, &mut out);
        assert_eq!(out.len(), 1_000);
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn concurrent_disjoint_inserts() {
        let idx = StdArc::new(small());
        let threads = 4;
        let per = 10_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let idx = StdArc::clone(&idx);
                std::thread::spawn(move || {
                    for i in 0..per {
                        let k = (t as u64) * per + i;
                        idx.insert(k.wrapping_mul(0x9E3779B97F4A7C15), k);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(idx.len(), threads as usize * per as usize);
        for t in 0..threads as u64 {
            for i in (0..per).step_by(97) {
                let k = t * per + i;
                assert_eq!(idx.get(k.wrapping_mul(0x9E3779B97F4A7C15)), Some(k));
            }
        }
    }

    #[test]
    fn concurrent_overlapping_upserts() {
        let idx = StdArc::new(small());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let idx = StdArc::clone(&idx);
                std::thread::spawn(move || {
                    for i in 0..5_000u64 {
                        idx.insert(i, i + 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(idx.len(), 5_000);
        for i in (0..5_000u64).step_by(53) {
            assert_eq!(idx.get(i), Some(i + 1));
        }
    }

    #[test]
    fn concurrent_readers_and_writers() {
        let idx = StdArc::new(small());
        for i in 0..5_000u64 {
            idx.insert(i * 2, i);
        }
        let writer = {
            let idx = StdArc::clone(&idx);
            std::thread::spawn(move || {
                for i in 5_000..15_000u64 {
                    idx.insert(i * 2, i);
                }
            })
        };
        let reader = {
            let idx = StdArc::clone(&idx);
            std::thread::spawn(move || {
                let mut hits = 0;
                for _ in 0..3 {
                    for i in 0..5_000u64 {
                        if idx.get(i * 2) == Some(i) {
                            hits += 1;
                        }
                    }
                }
                hits
            })
        };
        let scanner = {
            let idx = StdArc::clone(&idx);
            std::thread::spawn(move || {
                let mut out = Vec::new();
                for _ in 0..50 {
                    out.clear();
                    idx.scan(0, 100, &mut out);
                    assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
                }
            })
        };
        writer.join().unwrap();
        assert_eq!(reader.join().unwrap(), 15_000);
        scanner.join().unwrap();
        assert_eq!(idx.len(), 15_000);
    }

    #[test]
    fn audit_clean_after_concurrent_growth() {
        let idx = StdArc::new(small());
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let idx = StdArc::clone(&idx);
                std::thread::spawn(move || {
                    for i in 0..5_000u64 {
                        idx.insert((t * 5_000 + i).wrapping_mul(0x9E3779B97F4A7C15), i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("writer");
        }
        let report = idx.audit();
        assert!(report.checks > 20_000);
        report.assert_clean();
    }

    #[test]
    fn audit_detects_corrupted_segment_key_count() {
        let idx = small();
        for k in 0..2_000u64 {
            idx.insert(k, k);
        }
        idx.audit().assert_clean();
        {
            let dir = idx.tables[0].dir.read();
            let mut seg = dir.entries[0].write();
            seg.num_keys += 1;
        }
        let report = idx.audit();
        assert!(!report.is_clean());
        assert!(report
            .violations
            .iter()
            .any(|v| v.invariant == "segment-key-count" || v.invariant == "table-key-count"));
    }

    #[test]
    fn remove_concurrent_smoke() {
        let idx = small();
        for i in 0..1_000u64 {
            idx.insert(i, i);
        }
        for i in 0..500u64 {
            assert_eq!(idx.remove(i), Some(i));
        }
        assert_eq!(idx.len(), 500);
        assert_eq!(idx.remove(0), None);
    }
}
