//! Variable-size segments (§3.2–§3.3).
//!
//! A segment owns a run of buckets plus the remapping function that spreads
//! its key sub-range over those buckets. All keys in a segment share the same
//! `LD` most-significant bits of the EH sub-key, so the segment's own key
//! space is `[0, 2^m)` with `m = n − R − LD` bits. Segments are the unit of
//! model retraining: remapping, expansion and splitting each rebuild exactly
//! one segment, which is the paper's "local model re-training" design point
//! (§2.2).

use crate::bucket::Bucket;
use crate::params::Params;
use crate::remap::{mask64, RemapFn};
use index_traits::{Key, Value};

/// Outcome of attempting a remapping (§3.3, Algorithm 1 lines 8/15).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemapOutcome {
    /// The function was adjusted by stealing buckets; segment size unchanged.
    Stole,
    /// Stealing failed; the segment grew so the target sub-range doubled.
    Grew,
    /// Growth would exceed the segment-size cap: remapping failed.
    Failed,
}

/// Outcome of [`Segment::upsert_in_bucket`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BucketUpsert {
    /// The key existed; its value was replaced in place.
    Updated,
    /// The pair was inserted; the segment's key count grew by one.
    Inserted,
    /// The bucket is at capacity; the caller must run maintenance.
    Full,
}

/// A segment: local depth, remapping function, and bucket array.
#[derive(Debug, Clone)]
pub struct Segment {
    /// Local depth `LD`: all keys share the top `LD` bits of the EH sub-key.
    pub local_depth: u32,
    /// The piecewise-linear remapping function (approximated CDF).
    pub remap: RemapFn,
    /// Buckets; length is always `remap.total_buckets()`.
    pub buckets: Vec<Bucket>,
    /// Per-bucket lengths, parallel to `buckets` (`occupancy[b]` always
    /// equals `buckets[b].len()`). Probes and scans consult this 2-byte-per-
    /// bucket array to skip empty buckets, touching one cache line per 32
    /// buckets instead of one 48-byte `Bucket` header each.
    pub occupancy: Vec<u16>,
    /// Number of keys stored across all buckets.
    pub num_keys: usize,
    /// Consecutive remappings since the last split/expansion. Each remap in
    /// a streak doubles the granted bucket count, so a key distribution
    /// that keeps outgrowing its sub-range (e.g. an advancing timestamp
    /// band) costs O(log) remaps per segment instead of O(segment/bucket):
    /// the O(segment) rebuild per remap stays, but the rebuild count is
    /// amortized geometrically.
    pub remap_streak: u32,
}

impl Segment {
    /// A fresh one-bucket segment with the identity remapping function.
    pub fn new(local_depth: u32) -> Self {
        Segment {
            local_depth,
            remap: RemapFn::identity(),
            buckets: vec![Bucket::default()],
            occupancy: vec![0],
            num_keys: 0,
            remap_streak: 0,
        }
    }

    /// Number of key bits of this segment: `m = m_total − LD`.
    #[inline]
    pub fn key_bits(&self, m_total: u32) -> u32 {
        m_total - self.local_depth
    }

    /// Within-segment key of EH sub-key `sk`.
    #[inline]
    pub fn local_key(&self, sk: u64, m_total: u32) -> u64 {
        sk & mask64(self.key_bits(m_total))
    }

    /// Total bucket count.
    #[inline]
    pub fn total_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Segment capacity in keys.
    #[inline]
    pub fn capacity(&self, params: &Params) -> usize {
        self.buckets.len() * params.bucket_entries
    }

    /// Key utilization `U_s` of the whole segment.
    #[inline]
    pub fn utilization(&self, params: &Params) -> f64 {
        self.num_keys as f64 / self.capacity(params) as f64
    }

    /// Bucket index for within-segment key `k`.
    #[inline]
    pub fn bucket_of(&self, k: u64, m_total: u32) -> usize {
        self.remap.bucket_index(k, self.key_bits(m_total))
    }

    /// Length of bucket `b` read from the occupancy array (no bucket deref).
    #[inline]
    pub fn bucket_len(&self, b: usize) -> usize {
        self.occupancy[b] as usize
    }

    /// Inserts or updates `(key, value)` in bucket `b`, keeping the
    /// occupancy array and the segment key count in sync. `cap` is the
    /// per-bucket slot capacity.
    pub fn upsert_in_bucket(
        &mut self,
        b: usize,
        key: Key,
        value: Value,
        cap: usize,
    ) -> BucketUpsert {
        let bucket = &mut self.buckets[b];
        if bucket.update(key, value) {
            return BucketUpsert::Updated;
        }
        if bucket.len() >= cap {
            return BucketUpsert::Full;
        }
        bucket.insert(key, value);
        self.occupancy[b] += 1;
        self.num_keys += 1;
        BucketUpsert::Inserted
    }

    /// Removes `key` from bucket `b`, keeping the occupancy array and the
    /// segment key count in sync.
    pub fn remove_from_bucket(&mut self, b: usize, key: Key) -> Option<Value> {
        if self.occupancy[b] == 0 {
            return None;
        }
        let v = self.buckets[b].remove(key)?;
        self.occupancy[b] -= 1;
        self.num_keys -= 1;
        Some(v)
    }

    /// Searches for full key `key` (with EH sub-key `sk`).
    pub fn get(&self, sk: u64, key: Key, m_total: u32, params: &Params) -> Option<Value> {
        let m = self.key_bits(m_total);
        let k = sk & mask64(m);
        let b = self.remap.bucket_index(k, m);
        if self.occupancy[b] == 0 {
            return None; // Empty bucket: skip the probe entirely.
        }
        let bucket = &self.buckets[b];
        let hint = self.remap.slot_hint(k, m, params.bucket_entries);
        match bucket.search_from_hint(key, hint) {
            Ok(i) => Some(bucket.vals()[i]),
            Err(_) => None,
        }
    }

    /// Walks buckets from `(b, slot)` on, bulk-appending pairs until `out`
    /// reaches `count` entries or the segment is exhausted. Returns the
    /// position to resume from when the count was hit, `None` when the
    /// segment ran out. The occupancy array lets the walk skip empty
    /// buckets without dereferencing them.
    pub fn walk_from(
        &self,
        mut b: usize,
        mut slot: usize,
        count: usize,
        out: &mut Vec<(Key, Value)>,
    ) -> Option<(usize, usize)> {
        let nb = self.buckets.len();
        while b < nb {
            if out.len() >= count {
                return Some((b, slot));
            }
            // Hint the next bucket's arrays in while this one is copied:
            // split key/value vectors mean the walk touches two unrelated
            // cachelines per bucket, which the hardware stride prefetcher
            // does not pick up across the Vec indirection.
            if b + 1 < nb {
                crate::simd::prefetch_slice(self.buckets[b + 1].keys());
                crate::simd::prefetch_slice(self.buckets[b + 1].vals());
            }
            let blen = self.bucket_len(b);
            if slot < blen {
                slot += self.buckets[b].append_range(slot, count - out.len(), out);
                if slot < blen {
                    return Some((b, slot)); // Count hit mid-bucket.
                }
            }
            b += 1;
            slot = 0;
        }
        None
    }

    /// All key-value pairs in ascending key order.
    ///
    /// Bucket order equals remapped-key order, and the remapping function is
    /// monotone in the raw key, so concatenating buckets yields sorted pairs.
    pub fn sorted_pairs(&self) -> Vec<(Key, Value)> {
        let mut out = Vec::with_capacity(self.num_keys);
        for b in &self.buckets {
            out.extend(b.keys().iter().copied().zip(b.vals().iter().copied()));
        }
        out
    }

    /// Rebuilds a segment from sorted `pairs` using `remap`, adjusting the
    /// function until every key fits its bucket.
    ///
    /// When a bucket overflows the fix is decisive: the function is refined
    /// along the overflowing key group's common prefix in one step (no
    /// intermediate rebuilds), so the retry count is linear in the number of
    /// over-full groups rather than the refinement depth.
    pub fn build(
        local_depth: u32,
        mut remap: RemapFn,
        pairs: &[(Key, Value)],
        m_total: u32,
        params: &Params,
    ) -> Self {
        let m = m_total - local_depth;
        let maskm = mask64(m);
        let cap = params.bucket_entries;
        'retry: loop {
            let total = remap.total_buckets();
            // Buckets are fixed-size (2 KiB by default): reserve the full
            // slot capacity up front, as the paper's memory analysis
            // assumes ("each key must be stored in a particular bucket",
            // §4.3).
            let mut buckets: Vec<Bucket> = (0..total).map(|_| Bucket::with_capacity(cap)).collect();
            // `pairs` is sorted and the function is monotone, so every
            // bucket owns a contiguous slice. Walk the leaves in key order
            // and cut each bucket's slice arithmetically instead of paying a
            // tree descent per key. `cum` mirrors the stored per-leaf cums:
            // `leaves` yields key order and the cums are the prefix sums of
            // the counts in that order.
            let mut i = 0usize;
            let mut cum = 0u32;
            for leaf in remap.leaves(m) {
                let w = m - leaf.depth;
                let leaf_end = if w >= m || leaf.start + (1u64 << w) > maskm {
                    pairs.len()
                } else {
                    let end = leaf.start + (1u64 << w);
                    i + pairs[i..].partition_point(|&(key, _)| (key & maskm) < end)
                };
                if leaf.count == 0 {
                    // Zero-count piece: its keys clamp into the next piece's
                    // first bucket (the last bucket at the tail), exactly as
                    // `bucket_index` resolves them.
                    let b = cum.min(total - 1) as usize;
                    // Hint the next run's input in while this one copies.
                    crate::simd::prefetch_slice(&pairs[leaf_end..]);
                    match fill_bucket(&mut buckets[b], &pairs[i..leaf_end], cap, maskm) {
                        Ok(()) => i = leaf_end,
                        Err((k_first, k_last)) => {
                            fix_overflow(&mut remap, k_first, k_last, m);
                            continue 'retry;
                        }
                    }
                    continue;
                }
                for j in 0..leaf.count {
                    let hi = if j + 1 == leaf.count {
                        leaf_end
                    } else {
                        // First offset past bucket `j` of this piece:
                        // ceil((j + 1) · 2^w / count), the inverse of
                        // bucket = floor(off · count / 2^w).
                        let c = leaf.count as u128;
                        let off_end = (((j + 1) as u128) << w).div_ceil(c);
                        let key_end = leaf.start + off_end as u64;
                        i + pairs[i..leaf_end].partition_point(|&(key, _)| (key & maskm) < key_end)
                    };
                    let b = (cum + j) as usize;
                    // Hint the next run's input in while this one copies.
                    crate::simd::prefetch_slice(&pairs[hi..]);
                    match fill_bucket(&mut buckets[b], &pairs[i..hi], cap, maskm) {
                        Ok(()) => i = hi,
                        Err((k_first, k_last)) => {
                            fix_overflow(&mut remap, k_first, k_last, m);
                            continue 'retry;
                        }
                    }
                }
                cum += leaf.count;
            }
            debug_assert_eq!(i, pairs.len());
            let occupancy = buckets.iter().map(|b| b.len() as u16).collect();
            return Segment {
                local_depth,
                remap,
                buckets,
                occupancy,
                num_keys: pairs.len(),
                remap_streak: 0,
            };
        }
    }

    /// Number of keys stored in each piece (leaf) of the remapping function,
    /// in key order.
    pub fn keys_per_piece(&self, m_total: u32) -> Vec<usize> {
        let m = self.key_bits(m_total);
        let pairs = self.sorted_pairs();
        let maskm = mask64(m);
        self.remap
            .leaves(m)
            .iter()
            .map(|leaf| {
                let w = m - leaf.depth;
                let lo = pairs.partition_point(|&(key, _)| (key & maskm) < leaf.start);
                let hi = if w >= m || leaf.start + (1u64 << w) > maskm {
                    pairs.len()
                } else {
                    let end = leaf.start + (1u64 << w);
                    pairs.partition_point(|&(key, _)| (key & maskm) < end)
                };
                hi - lo
            })
            .collect()
    }

    /// The paper's remapping operation (§3.3). `k` is the within-segment key
    /// whose bucket overflowed. On success the segment is rebuilt in place.
    ///
    /// `max_buckets` is the segment-size cap `Limit_seg(LD)`; growth beyond
    /// it makes the remapping fail (Algorithm 1 then falls back to split or
    /// directory doubling).
    pub fn remap_adjust(
        &mut self,
        k: u64,
        m_total: u32,
        max_buckets: usize,
        params: &Params,
    ) -> RemapOutcome {
        let m = self.key_bits(m_total);
        let cap = params.bucket_entries as f64;
        let ut = params.utilization_threshold;
        let mut remap = self.remap.clone();
        let pairs = self.sorted_pairs();
        let maskm = mask64(m);

        let keys_in = |start: u64, depth: u32| -> usize {
            let w = m - depth;
            let lo = pairs.partition_point(|&(key, _)| (key & maskm) < start);
            let hi = if w >= m || start + (1u64 << w) > maskm {
                pairs.len()
            } else {
                let end = start + (1u64 << w);
                pairs.partition_point(|&(key, _)| (key & maskm) < end)
            };
            hi - lo
        };

        // Step 1 (Figure 7): refine sub-ranges until the target sub-range's
        // own utilization exceeds U_t — i.e., until the function is
        // fine-grained enough to expose where the density actually is.
        // (A zero-bucket target counts as fully utilized.)
        loop {
            let leaf = remap.locate(k, m);
            let keys_t = keys_in(leaf.start, leaf.depth);
            let util = if leaf.count == 0 {
                f64::INFINITY
            } else {
                keys_t as f64 / (leaf.count as f64 * cap)
            };
            if util > ut || leaf.depth >= m {
                break;
            }
            remap.refine_at(k, m);
        }

        // Step 2: try to steal buckets from low-utilization sub-ranges;
        // each donor keeps enough buckets to stay above U_t (empty donors
        // may give everything away). The paper's grant is a doubling of the
        // target sub-range (`base`); consecutive remaps escalate the grant
        // geometrically (see `remap_streak`) up to the segment's own size,
        // so repeatedly-remapping segments converge in O(log) remaps.
        let boost = 1u32 << self.remap_streak.min(10);
        let target = remap.locate(k, m);
        let base = target.count.max(1);
        let desired = base
            .saturating_mul(boost)
            .min(remap.total_buckets().max(base));
        let mut donors: Vec<(crate::remap::NodeId, u32, u32)> = Vec::new();
        let mut available = 0u32;
        for leaf in remap.leaves(m) {
            if leaf.id == target.id || leaf.count == 0 {
                continue;
            }
            let keys_r = keys_in(leaf.start, leaf.depth) as f64;
            let util_r = keys_r / (leaf.count as f64 * cap);
            if util_r < ut {
                let min_keep = (keys_r / (ut * cap)).ceil() as u32;
                if leaf.count > min_keep {
                    donors.push((leaf.id, leaf.count - min_keep, leaf.count));
                    available += leaf.count - min_keep;
                }
            }
        }

        let outcome = if available >= base {
            // Steal, preferring the emptiest donors first (largest
            // surplus). Stealing moves capacity without growing the
            // segment, so the escalated amount is taken when available.
            let take_total = desired.min(available);
            donors.sort_by_key(|d| std::cmp::Reverse(d.1));
            let mut remaining = take_total;
            for (id, surplus, count) in donors {
                if remaining == 0 {
                    break;
                }
                let take = surplus.min(remaining);
                remap.set_leaf_count(id, count - take);
                remaining -= take;
            }
            remap.set_leaf_count(target.id, target.count + take_total);
            RemapOutcome::Stole
        } else {
            // Growth path: grant at least the paper's doubling, more under
            // a streak, but never push the segment's utilization below 1/4
            // (growth is real memory; steals are not).
            let total = remap.total_buckets();
            let max_by_util = ((self.num_keys * 4 / params.bucket_entries) as u32)
                .max(total.saturating_add(base));
            let grant = desired.min(max_by_util.saturating_sub(total)).max(base);
            if total as usize + base as usize > max_buckets {
                return RemapOutcome::Failed;
            }
            let grant = grant.min((max_buckets - total as usize) as u32);
            remap.set_leaf_count(target.id, target.count + grant);
            RemapOutcome::Grew
        };
        remap.recompute_cums();
        let streak = self.remap_streak + 1;
        *self = Segment::build(self.local_depth, remap, &pairs, m_total, params);
        self.remap_streak = streak;
        outcome
    }

    /// The paper's expansion operation: double the segment size, doubling the
    /// slopes. Fails (returns `false`) if the cap would be exceeded.
    pub fn expand(&mut self, m_total: u32, max_buckets: usize, params: &Params) -> bool {
        if self.total_buckets() * 2 > max_buckets {
            return false;
        }
        let mut remap = self.remap.clone();
        remap.expand();
        let pairs = self.sorted_pairs();
        *self = Segment::build(self.local_depth, remap, &pairs, m_total, params);
        true
    }

    /// Splits the segment into two halves of its key range (§3.3). Each new
    /// segment gets twice the buckets its half's keys need, keeping the
    /// sub-range slopes of that half.
    pub fn split(&self, m_total: u32, params: &Params) -> (Segment, Segment) {
        let m = self.key_bits(m_total);
        debug_assert!(m >= 1, "cannot split a single-key segment");
        let pairs = self.sorted_pairs();
        let half = 1u64 << (m - 1);
        let maskm = mask64(m);
        let mid = pairs.partition_point(|&(key, _)| (key & maskm) < half);
        let (left_pairs, right_pairs) = pairs.split_at(mid);

        let (lf, rf) = self.remap.split_halves();
        let new_ld = self.local_depth + 1;
        let left = Self::split_half(new_ld, lf, left_pairs, m_total, params);
        let right = Self::split_half(new_ld, rf, right_pairs, m_total, params);
        (left, right)
    }

    /// Builds one half of a split: size = 2 × the buckets needed for the
    /// half's keys, distributed proportionally to the half's old slopes.
    fn split_half(
        new_ld: u32,
        mut remap: RemapFn,
        pairs: &[(Key, Value)],
        m_total: u32,
        params: &Params,
    ) -> Segment {
        let needed = (pairs.len() as u32).div_ceil(params.bucket_entries as u32);
        let target = (2 * needed).max(1);
        remap.scale_to(target);
        Segment::build(new_ld, remap, pairs, m_total, params)
    }

    /// Shrinks an under-utilized segment (deletion merge, §3.3 — "similar to
    /// remapping but in the opposite direction"): resizes every sub-range to
    /// what its remaining keys need at utilization `U_t` and rebuilds.
    /// Returns `false` without rebuilding when that would not actually
    /// reduce the segment, so deletion storms cannot trigger repeated O(n)
    /// rebuilds.
    pub fn shrink(&mut self, m_total: u32, params: &Params) -> bool {
        if self.total_buckets() <= 1 {
            return false;
        }
        let m = self.key_bits(m_total);
        let pairs = self.sorted_pairs();
        let maskm = mask64(m);
        let cap = params.bucket_entries as f64;
        let ut = params.utilization_threshold;
        let mut remap = self.remap.clone();
        let leaves = remap.leaves(m);
        let mut new_total = 0u64;
        let mut plan: Vec<(crate::remap::NodeId, u32)> = Vec::with_capacity(leaves.len());
        for leaf in &leaves {
            let w = m - leaf.depth;
            let lo = pairs.partition_point(|&(key, _)| (key & maskm) < leaf.start);
            let hi = if w >= m || leaf.start + (1u64 << w) > maskm {
                pairs.len()
            } else {
                let end = leaf.start + (1u64 << w);
                pairs.partition_point(|&(key, _)| (key & maskm) < end)
            };
            let count = (((hi - lo) as f64) / (ut * cap)).ceil() as u32;
            new_total += count as u64;
            plan.push((leaf.id, count));
        }
        if new_total == 0 {
            // Keep one bucket on the first leaf.
            plan[0].1 = 1;
            new_total = 1;
        }
        if new_total as usize >= self.total_buckets() {
            return false;
        }
        for (id, count) in plan {
            remap.set_leaf_count(id, count);
        }
        remap.recompute_cums();
        *self = Segment::build(self.local_depth, remap, &pairs, m_total, params);
        true
    }

    /// Heap bytes held by the segment.
    pub fn heap_bytes(&self) -> usize {
        self.remap.heap_bytes()
            + self.buckets.capacity() * std::mem::size_of::<Bucket>()
            + self.occupancy.capacity() * std::mem::size_of::<u16>()
            + self.buckets.iter().map(Bucket::heap_bytes).sum::<usize>()
    }
}

/// Appends a sorted run into `bucket`, or reports the overflowing key group
/// (`Err((k_first, k_last))`, within-segment keys) when it would exceed
/// `cap`. The group is the bucket's existing first key (or the run's, if the
/// bucket is empty) through the first key that does not fit — the same pair
/// a per-key fill would have handed to [`fix_overflow`].
fn fill_bucket(
    bucket: &mut Bucket,
    run: &[(Key, Value)],
    cap: usize,
    maskm: u64,
) -> Result<(), (u64, u64)> {
    if bucket.len() + run.len() > cap {
        let k_first = if bucket.is_empty() {
            run[0].0 & maskm
        } else {
            bucket.keys()[0] & maskm
        };
        let k_last = run[cap - bucket.len()].0 & maskm;
        debug_assert!(k_first < k_last);
        return Err((k_first, k_last));
    }
    bucket.extend_sorted(run);
    Ok(())
}

/// Adjusts `remap` so the over-full key group `[k_first, k_last]` no longer
/// shares one bucket: refine along the group's common prefix until the two
/// ends fall into different pieces (one descent, no intermediate rebuilds),
/// keeping at least one bucket on each end's piece. When the ends already
/// sit in different pieces, the spilling (zero-count) pieces get buckets.
fn fix_overflow(remap: &mut RemapFn, k_first: u64, k_last: u64, m: u32) {
    let mut guard = 0;
    while remap.locate(k_first, m).id == remap.locate(k_last, m).id {
        let leaf = remap.locate(k_first, m);
        if leaf.depth >= m || !remap.refine_at(k_first, m) {
            break;
        }
        guard += 1;
        debug_assert!(guard <= 64);
    }
    // Make sure both ends own buckets, and give the first end twice its
    // current share so the group's keys gain room even when the refinement
    // lands all of them on one side.
    let a = remap.locate(k_first, m);
    remap.set_leaf_count(a.id, (a.count * 2).max(1));
    let b = remap.locate(k_last, m);
    if b.count == 0 {
        remap.set_leaf_count(b.id, 1);
    }
    remap.recompute_cums();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> Params {
        Params {
            bucket_entries: 4,
            ..Params::default()
        }
    }

    /// Builds a segment at `ld` containing `keys` (within-segment keys used
    /// directly as full keys; fine for `m_total`-bit tests).
    fn seg_with(ld: u32, keys: &[u64], m_total: u32, p: &Params) -> Segment {
        let mut pairs: Vec<(Key, Value)> = keys.iter().map(|&k| (k, k + 1)).collect();
        pairs.sort_unstable();
        Segment::build(ld, RemapFn::identity(), &pairs, m_total, p)
    }

    #[test]
    fn build_places_all_keys_and_stays_sorted() {
        let p = small_params();
        let keys: Vec<u64> = (0..64).map(|i| i * 3 % 256).collect();
        let mut uniq: Vec<u64> = keys.clone();
        uniq.sort_unstable();
        uniq.dedup();
        let seg = seg_with(0, &uniq, 8, &p);
        assert_eq!(seg.num_keys, uniq.len());
        let pairs = seg.sorted_pairs();
        let got: Vec<u64> = pairs.iter().map(|&(k, _)| k).collect();
        assert_eq!(got, uniq);
        for &k in &uniq {
            assert_eq!(seg.get(k, k, 8, &p), Some(k + 1));
        }
    }

    #[test]
    fn build_grows_on_dense_cluster() {
        let p = small_params();
        // 16 consecutive keys force overflow of a single 4-entry bucket.
        let keys: Vec<u64> = (100..116).collect();
        let seg = seg_with(0, &keys, 8, &p);
        assert!(seg.total_buckets() >= 4);
        for &k in &keys {
            assert_eq!(seg.get(k, k, 8, &p), Some(k + 1));
        }
    }

    #[test]
    fn build_handles_deep_cluster_in_wide_range() {
        // The pathological case that motivates adaptive refinement: a tight
        // cluster at the bottom of a 48-bit key range. The build must
        // converge quickly and keep the bucket count linear in the keys.
        let p = small_params();
        let keys: Vec<u64> = (0..512u64).map(|i| i * 3).collect();
        let seg = seg_with(0, &keys, 48, &p);
        assert_eq!(seg.num_keys, 512);
        assert!(
            seg.total_buckets() <= 8 * (512 / p.bucket_entries) + 64,
            "bucket explosion: {}",
            seg.total_buckets()
        );
        for &k in keys.iter().step_by(17) {
            assert_eq!(seg.get(k, k, 48, &p), Some(k + 1));
        }
    }

    #[test]
    fn expand_doubles_buckets_and_keeps_keys() {
        let p = small_params();
        let keys: Vec<u64> = (0..16).map(|i| i * 16).collect();
        let mut seg = seg_with(0, &keys, 8, &p);
        let before = seg.total_buckets();
        assert!(seg.expand(8, 1024, &p));
        assert!(seg.total_buckets() >= before * 2);
        for &k in &keys {
            assert_eq!(seg.get(k, k, 8, &p), Some(k + 1));
        }
    }

    #[test]
    fn expand_respects_cap() {
        let p = small_params();
        let mut seg = seg_with(0, &[1, 2], 8, &p);
        assert!(!seg.expand(8, 1, &p));
        assert_eq!(seg.total_buckets(), 1);
    }

    #[test]
    fn split_partitions_by_top_bit() {
        let p = small_params();
        let keys: Vec<u64> = (0..32).map(|i| i * 8).collect(); // Spread over [0, 256).
        let seg = seg_with(0, &keys, 8, &p);
        let (l, r) = seg.split(8, &p);
        assert_eq!(l.local_depth, 1);
        assert_eq!(r.local_depth, 1);
        assert_eq!(l.num_keys + r.num_keys, keys.len());
        for pair in l.sorted_pairs() {
            assert!(pair.0 < 128);
        }
        for pair in r.sorted_pairs() {
            assert!(pair.0 >= 128);
        }
        for &k in &keys {
            let half = if k < 128 { &l } else { &r };
            assert_eq!(half.get(k, k, 8, &p), Some(k + 1));
        }
    }

    #[test]
    fn split_sizes_track_skew() {
        let p = small_params();
        // All 16 keys in the right half: right segment gets more buckets.
        let keys: Vec<u64> = (0..16).map(|i| 128 + i * 8).collect();
        let seg = seg_with(0, &keys, 8, &p);
        let (l, r) = seg.split(8, &p);
        assert!(r.total_buckets() >= l.total_buckets());
        assert_eq!(l.num_keys, 0);
        assert_eq!(r.num_keys, 16);
    }

    #[test]
    fn remap_steals_from_sparse_subranges() {
        let p = small_params();
        // Build a segment with 4 sub-ranges x 2 buckets (m = 8). Cluster all
        // keys in sub-range 1 ([64, 128)).
        let remap = RemapFn::from_counts(vec![2, 2, 2, 2]);
        let pairs: Vec<(Key, Value)> = (64..72).map(|k| (k, k)).collect();
        let mut seg = Segment::build(0, remap, &pairs, 8, &p);
        let outcome = seg.remap_adjust(65, 8, 1024, &p);
        assert_ne!(outcome, RemapOutcome::Failed);
        for k in 64..72u64 {
            assert_eq!(seg.get(k, k, 8, &p), Some(k));
        }
    }

    #[test]
    fn remap_fails_when_cap_blocks_growth() {
        let p = small_params();
        // Every sub-range nearly full: no donors, growth capped.
        let remap = RemapFn::from_counts(vec![1, 1]);
        let pairs: Vec<(Key, Value)> = (0..8).map(|k| (k * 32, k)).collect();
        let mut seg = Segment::build(0, remap, &pairs, 8, &p);
        let cap = seg.total_buckets(); // No room to grow.
        let outcome = seg.remap_adjust(0, 8, cap, &p);
        assert_eq!(outcome, RemapOutcome::Failed);
    }

    #[test]
    fn remap_converges_on_deep_cluster() {
        let p = small_params();
        // Tight cluster at the bottom of a 40-bit range; remap_adjust must
        // refine adaptively rather than inflating the segment.
        let pairs: Vec<(Key, Value)> = (0..64u64).map(|k| (k * 2, k)).collect();
        let mut seg = Segment::build(0, RemapFn::identity(), &pairs, 40, &p);
        let before = seg.total_buckets();
        let outcome = seg.remap_adjust(10, 40, 1 << 20, &p);
        assert_ne!(outcome, RemapOutcome::Failed);
        assert!(
            seg.total_buckets() < before * 16 + 64,
            "unbounded growth: {} -> {}",
            before,
            seg.total_buckets()
        );
        for &(k, v) in &pairs {
            assert_eq!(seg.get(k, k, 40, &p), Some(v));
        }
    }

    #[test]
    fn shrink_compacts_sparse_segment() {
        let p = small_params();
        let remap = RemapFn::from_counts(vec![4, 4]);
        let pairs: Vec<(Key, Value)> = vec![(10, 1), (200, 2)];
        let mut seg = Segment::build(0, remap, &pairs, 8, &p);
        let before = seg.total_buckets();
        assert!(seg.shrink(8, &p));
        assert!(seg.total_buckets() < before);
        assert_eq!(seg.get(10, 10, 8, &p), Some(1));
        assert_eq!(seg.get(200, 200, 8, &p), Some(2));
    }

    #[test]
    fn shrink_refuses_when_not_profitable() {
        let p = small_params();
        // A nearly full segment must not shrink.
        let keys: Vec<u64> = (0..8).map(|i| i * 32).collect();
        let mut seg = seg_with(0, &keys, 8, &p);
        let before = seg.total_buckets();
        let _ = seg.shrink(8, &p);
        // Either it declined, or it genuinely reduced while keeping keys.
        assert!(seg.total_buckets() <= before);
        assert_eq!(seg.num_keys, 8);
    }

    #[test]
    fn keys_per_piece_counts_match() {
        let p = small_params();
        let remap = RemapFn::from_counts(vec![1, 1, 1, 1]);
        let pairs: Vec<(Key, Value)> = vec![(0, 0), (65, 0), (66, 0), (200, 0)];
        let seg = Segment::build(0, remap, &pairs, 8, &p);
        assert_eq!(seg.keys_per_piece(8), vec![1, 2, 0, 1]);
    }

    #[test]
    fn occupancy_tracks_bucket_lengths() {
        let p = small_params();
        let keys: Vec<u64> = (0..32).map(|i| i * 7).collect();
        let mut seg = seg_with(0, &keys, 8, &p);
        for (b, bucket) in seg.buckets.iter().enumerate() {
            assert_eq!(seg.occupancy[b] as usize, bucket.len());
        }
        let b = seg.bucket_of(seg.local_key(7, 8), 8);
        assert_eq!(seg.remove_from_bucket(b, 7), Some(8));
        assert_eq!(seg.bucket_len(b), seg.buckets[b].len());
        assert_eq!(seg.remove_from_bucket(b, 7), None);
        assert_eq!(
            seg.upsert_in_bucket(b, 7, 9, p.bucket_entries),
            BucketUpsert::Inserted
        );
        assert_eq!(
            seg.upsert_in_bucket(b, 7, 10, p.bucket_entries),
            BucketUpsert::Updated
        );
        assert_eq!(seg.bucket_len(b), seg.buckets[b].len());
        assert_eq!(seg.num_keys, keys.len());
    }

    #[test]
    fn upsert_reports_full_without_changing_state() {
        let p = small_params();
        let keys: Vec<u64> = (0..4).collect(); // Fills one 4-slot bucket.
        let mut seg = seg_with(0, &keys, 8, &p);
        let b = seg.bucket_of(0, 8);
        assert_eq!(seg.bucket_len(b), 4);
        assert_eq!(
            seg.upsert_in_bucket(b, 100, 1, p.bucket_entries),
            BucketUpsert::Full
        );
        assert_eq!(seg.num_keys, 4);
        assert_eq!(seg.bucket_len(b), 4);
    }

    #[test]
    fn walk_from_streams_and_resumes() {
        let p = small_params();
        let keys: Vec<u64> = (0..40).map(|i| i * 5).collect();
        let seg = seg_with(0, &keys, 8, &p);
        let mut all = Vec::new();
        assert!(seg.walk_from(0, 0, usize::MAX, &mut all).is_none());
        assert_eq!(all, seg.sorted_pairs());

        // Resume in small steps: the concatenation must equal one pass.
        let mut stepped = Vec::new();
        let (mut b, mut s) = (0, 0);
        while let Some((nb, ns)) = seg.walk_from(b, s, stepped.len() + 7, &mut stepped) {
            (b, s) = (nb, ns);
        }
        assert_eq!(stepped, all);
    }

    #[test]
    fn utilization_reflects_fill() {
        let p = small_params();
        let pairs: Vec<(Key, Value)> = vec![(1, 1), (2, 2)];
        let seg = Segment::build(0, RemapFn::identity(), &pairs, 8, &p);
        assert!((seg.utilization(&p) - 0.5).abs() < 1e-9);
    }
}
