//! Bucket-granularity concurrent DyTIS — the design the paper *rejected*.
//!
//! §3.4: "CCEH leverages concurrency at finer grains of buckets within
//! segments. We also explored this, but found that performance of DyTIS
//! generally degrades. Our analysis shows that this is due to the overhead
//! of additional memory for the fine-grained locks and the handling of
//! segments with variable sizes."
//!
//! This module reproduces that exploration so the trade-off can be measured
//! (see the `lock_granularity` Criterion bench): every bucket carries its
//! own lock, point operations take the segment lock in *read* mode plus one
//! bucket lock, and only structure-changing operations (remapping,
//! expansion, split, doubling) take write locks. The extra per-bucket locks
//! and the rebuild cost of converting between locked and plain bucket
//! arrays are exactly the overheads the paper calls out.
//!
//! Like [`crate::ConcurrentDyTis`], reads are optimistic (DESIGN.md §14):
//! they probe an epoch-published directory snapshot without the directory
//! lock, validating a per-slot version counter around the probe. One
//! difference from the coarse variant: bucket contents mutate under the
//! segment *read* lock, so the slot version is bumped only around the
//! *structural* mutations that hold the segment write lock (in-place
//! remap/expand swaps). Bucket-level consistency comes from a second,
//! per-bucket seqlock ([`FineBucket`]): writers serialize on the bucket
//! lock and bracket mutations with a per-bucket version bump, while
//! optimistic readers probe the bucket's atomic arrays with no lock at
//! all, discarding any probe whose version moved. The bucket lock is
//! taken by readers only on the locked fallback/baseline path.

use crate::bucket::Bucket;
pub use crate::concurrent::ReadStats;
use crate::epoch::{Collector, EpochPtr, EpochStats, Guard};
use crate::params::Params;
use crate::remap::{mask64, RemapFn};
use crate::segment::{RemapOutcome, Segment};
use crate::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};
use crate::sync::{Arc, Mutex, MutexGuard, RwLock, RwLockWriteGuard};
use index_traits::{AuditReport, Auditable, ConcurrentKvIndex, Key, Value};

/// Optimistic probe attempts per `get` before falling back to locks.
const READ_RETRIES: usize = 8;
/// Optimistic restarts per table in `scan` before falling back to locks.
const SCAN_RESTARTS: usize = 4;
/// Seqlock read attempts per bucket before the surrounding operation
/// reports contention (retrying at its own level or falling back).
const BUCKET_RETRIES: usize = 4;

/// A fixed-capacity sorted bucket readable without its lock.
///
/// Storage is a pair of atomic arrays, so *every* shared access is atomic
/// and racing reads are defined behavior: a reader can observe a stale or
/// mid-shift pair, but never a torn word, and seqlock validation discards
/// the whole probe in that case. Writers serialize on `lock` and bracket
/// each mutation with `version` bumps (odd while mutating, via
/// [`FineBucket::write`]); optimistic readers snapshot the version, read
/// the arrays with `Relaxed` loads, and revalidate. The extra word per
/// slot-array plus lock plus version is exactly the fine-grained memory
/// overhead the paper's §3.4 analysis charges this design with.
struct FineBucket {
    /// Per-bucket seqlock version: odd while a writer mutates
    /// `len`/`keys`/`vals`, even and monotone otherwise.
    version: AtomicU64,
    /// Live pairs (a prefix of `keys`/`vals`); never exceeds capacity.
    len: AtomicUsize,
    keys: Box<[AtomicU64]>,
    vals: Box<[AtomicU64]>,
    /// Writer mutual exclusion. Optimistic readers never touch it; the
    /// locked read path takes it to make reads stable without validation.
    lock: Mutex<()>,
}

impl FineBucket {
    /// Builds from a plain bucket, reserving `cap` slots up front (the
    /// paper's fixed bucket byte budget).
    fn from_bucket(b: &Bucket, cap: usize) -> Self {
        let cap = cap.max(b.len());
        FineBucket {
            version: AtomicU64::new(0),
            len: AtomicUsize::new(b.len()),
            keys: (0..cap)
                .map(|i| AtomicU64::new(b.keys().get(i).copied().unwrap_or(0)))
                .collect(),
            vals: (0..cap)
                .map(|i| AtomicU64::new(b.vals().get(i).copied().unwrap_or(0)))
                .collect(),
            lock: Mutex::new(()),
        }
    }

    /// Consistent copy back to a plain bucket (takes the writer lock).
    fn to_bucket(&self) -> Bucket {
        let _g = self.lock.lock();
        // relaxed: the writer lock excludes mutators, so the arrays and
        // length are stable for the duration of the copy.
        let n = self.len.load(Ordering::Relaxed);
        let mut b = Bucket::with_capacity(self.keys.len());
        for i in 0..n {
            // relaxed: see above.
            b.push_sorted(
                self.keys[i].load(Ordering::Relaxed),
                self.vals[i].load(Ordering::Relaxed),
            );
        }
        b
    }

    /// Advisory live-pair count (no lock; pairs with the `Release` store
    /// closing each mutation).
    fn live_len(&self) -> usize {
        self.len.load(Ordering::Acquire).min(self.keys.len())
    }

    /// Opens a mutation window: writer lock + odd version. The guard
    /// closes the window (even again) before the lock is released.
    fn write(&self) -> FineBucketWrite<'_> {
        let guard = self.lock.lock();
        // The SeqCst RMW keeps the mutation's Relaxed data stores from
        // being ordered above the odd-version publication.
        self.version.fetch_add(1, Ordering::SeqCst);
        FineBucketWrite {
            b: self,
            _guard: guard,
        }
    }

    /// Seqlock read validation: the data loads made since `v0` was read
    /// are ordered before the re-load, and the probe only counts if no
    /// writer opened a window in between.
    fn validate(&self, v0: u64) -> bool {
        fence(Ordering::Acquire);
        self.version.load(Ordering::SeqCst) == v0
    }

    /// Branchless halving lower bound over the first `n` slots via
    /// `Relaxed` loads. Callers either hold `lock` (stable data) or
    /// validate a version around the call (torn results discarded).
    fn lower_bound_relaxed(&self, key: Key, n: usize) -> usize {
        let mut base = 0usize;
        let mut len = n;
        if len == 0 {
            return 0;
        }
        while len > 1 {
            let half = len / 2;
            // relaxed: see fn doc — stability comes from the caller's
            // lock or seqlock validation, not from this load.
            base += usize::from(self.keys[base + half - 1].load(Ordering::Relaxed) < key) * half;
            len -= half;
        }
        // relaxed: see above.
        base + usize::from(self.keys[base].load(Ordering::Relaxed) < key)
    }

    /// Hint-first position of `key` among the first `n` slots (same
    /// stability contract as [`FineBucket::lower_bound_relaxed`]).
    fn find_relaxed(&self, key: Key, hint: usize, n: usize) -> Option<usize> {
        if n == 0 {
            return None;
        }
        let pos = hint.min(n - 1);
        // relaxed: see lower_bound_relaxed.
        if self.keys[pos].load(Ordering::Relaxed) == key {
            return Some(pos);
        }
        let i = self.lower_bound_relaxed(key, n);
        // relaxed: see lower_bound_relaxed.
        (i < n && self.keys[i].load(Ordering::Relaxed) == key).then_some(i)
    }

    /// One lock-free probe for `key`. `Err(Contended)` when a writer's
    /// mutation window overlapped the read.
    fn probe_optimistic(&self, key: Key, hint: usize) -> Result<Option<Value>, Contended> {
        let v0 = self.version.load(Ordering::SeqCst);
        if v0 & 1 == 1 {
            return Err(Contended);
        }
        // relaxed: bounded by capacity below; validated before use.
        let n = self.len.load(Ordering::Relaxed).min(self.keys.len());
        let found = self
            .find_relaxed(key, hint, n)
            // relaxed: validated below.
            .map(|i| self.vals[i].load(Ordering::Relaxed));
        if self.validate(v0) {
            Ok(found)
        } else {
            Err(Contended)
        }
    }

    /// Probe with the writer lock held (locked read path / fallback):
    /// data is stable, no validation needed.
    fn probe_locked(&self, key: Key, hint: usize) -> Option<Value> {
        let _g = self.lock.lock();
        // relaxed: the writer lock excludes mutators.
        let n = self.len.load(Ordering::Relaxed);
        self.find_relaxed(key, hint, n)
            // relaxed: see above.
            .map(|i| self.vals[i].load(Ordering::Relaxed))
    }

    /// One lock-free bulk read: appends up to `max` pairs (from the first
    /// key `>= start`, or slot 0 when `start` is `None`) to `out`.
    /// `Err(Contended)` rolls `out` back to its previous length.
    fn read_range_optimistic(
        &self,
        start: Option<Key>,
        max: usize,
        out: &mut Vec<(Key, Value)>,
    ) -> Result<(), Contended> {
        let v0 = self.version.load(Ordering::SeqCst);
        if v0 & 1 == 1 {
            return Err(Contended);
        }
        let base = out.len();
        // relaxed: bounded by capacity below; validated before use.
        let n = self.len.load(Ordering::Relaxed).min(self.keys.len());
        let i0 = match start {
            Some(k) => self.lower_bound_relaxed(k, n),
            None => 0,
        };
        for i in i0..n.min(i0 + max) {
            // relaxed: validated below; a torn pair is truncated away.
            out.push((
                self.keys[i].load(Ordering::Relaxed),
                self.vals[i].load(Ordering::Relaxed),
            ));
        }
        if self.validate(v0) {
            Ok(())
        } else {
            out.truncate(base);
            Err(Contended)
        }
    }

    /// Bulk read with the writer lock held (locked scan path).
    fn read_range_locked(&self, start: Option<Key>, max: usize, out: &mut Vec<(Key, Value)>) {
        let _g = self.lock.lock();
        // relaxed: the writer lock excludes mutators.
        let n = self.len.load(Ordering::Relaxed);
        let i0 = match start {
            Some(k) => self.lower_bound_relaxed(k, n),
            None => 0,
        };
        for i in i0..n.min(i0 + max) {
            // relaxed: see above.
            out.push((
                self.keys[i].load(Ordering::Relaxed),
                self.vals[i].load(Ordering::Relaxed),
            ));
        }
    }
}

/// Marker error: a bucket writer's mutation window overlapped the read.
struct Contended;

/// Write guard over one [`FineBucket`]: holds the bucket lock with the
/// version odd; all mutation primitives live here so no path can mutate
/// outside a version window.
struct FineBucketWrite<'a> {
    b: &'a FineBucket,
    _guard: MutexGuard<'a, ()>,
}

impl Drop for FineBucketWrite<'_> {
    fn drop(&mut self) {
        // Back to even while the lock is still held; the SeqCst RMW keeps
        // the mutation's stores from sinking below the window close.
        self.b.version.fetch_add(1, Ordering::SeqCst);
    }
}

impl FineBucketWrite<'_> {
    fn len(&self) -> usize {
        // relaxed: this guard's lock excludes other mutators.
        self.b.len.load(Ordering::Relaxed)
    }

    /// Updates `key` in place; `false` if absent.
    fn update(&mut self, key: Key, value: Value) -> bool {
        let n = self.len();
        let i = self.b.lower_bound_relaxed(key, n);
        // relaxed: lock held, data stable.
        if i < n && self.b.keys[i].load(Ordering::Relaxed) == key {
            // relaxed: racing readers validate their version around loads.
            self.b.vals[i].store(value, Ordering::Relaxed);
            return true;
        }
        false
    }

    /// Inserts `(key, value)` preserving sorted order (updates in place on
    /// an existing key). The caller must have checked the bucket is not
    /// full.
    fn insert(&mut self, key: Key, value: Value) {
        let n = self.len();
        debug_assert!(n < self.b.keys.len(), "insert into full FineBucket");
        let i = self.b.lower_bound_relaxed(key, n);
        // relaxed: lock held, data stable.
        if i < n && self.b.keys[i].load(Ordering::Relaxed) == key {
            // relaxed: racing readers validate their version around loads.
            self.b.vals[i].store(value, Ordering::Relaxed);
            return;
        }
        for j in (i..n).rev() {
            // relaxed: the shift is invisible to optimistic readers — any
            // probe overlapping it fails its version validation.
            self.b.keys[j + 1].store(self.b.keys[j].load(Ordering::Relaxed), Ordering::Relaxed);
            // relaxed: see above.
            self.b.vals[j + 1].store(self.b.vals[j].load(Ordering::Relaxed), Ordering::Relaxed);
        }
        // relaxed: see above.
        self.b.keys[i].store(key, Ordering::Relaxed);
        // relaxed: see above.
        self.b.vals[i].store(value, Ordering::Relaxed);
        // Release pairs with the Acquire in `live_len` (advisory reads);
        // probes order it via the seqlock instead.
        self.b.len.store(n + 1, Ordering::Release);
    }

    /// Removes `key`, shifting larger pairs left; `None` if absent.
    fn remove(&mut self, key: Key) -> Option<Value> {
        let n = self.len();
        let i = self.b.lower_bound_relaxed(key, n);
        // relaxed: lock held, data stable.
        if i >= n || self.b.keys[i].load(Ordering::Relaxed) != key {
            return None;
        }
        // relaxed: see above.
        let v = self.b.vals[i].load(Ordering::Relaxed);
        for j in i..n - 1 {
            // relaxed: shifts are covered by the seqlock window.
            self.b.keys[j].store(
                self.b.keys[j + 1].load(Ordering::Relaxed),
                Ordering::Relaxed,
            );
            // relaxed: see above.
            self.b.vals[j].store(
                self.b.vals[j + 1].load(Ordering::Relaxed),
                Ordering::Relaxed,
            );
        }
        // Release pairs with the Acquire in `live_len`.
        self.b.len.store(n - 1, Ordering::Release);
        Some(v)
    }
}

/// A segment whose buckets are individually seqlocked.
struct FineSegment {
    local_depth: u32,
    remap: RemapFn,
    buckets: Vec<FineBucket>,
    num_keys: AtomicUsize,
    remap_streak: u32,
}

impl FineSegment {
    /// Converts a plain segment, reserving `cap` slots per bucket.
    fn from_segment(seg: Segment, cap: usize) -> Self {
        FineSegment {
            local_depth: seg.local_depth,
            remap_streak: seg.remap_streak,
            num_keys: AtomicUsize::new(seg.num_keys),
            buckets: seg
                .buckets
                .iter()
                .map(|b| FineBucket::from_bucket(b, cap))
                .collect(),
            remap: seg.remap,
        }
    }

    /// Converts back to a plain segment for structure operations (this copy
    /// is part of the overhead the paper measured).
    fn to_segment(&self) -> Segment {
        let buckets: Vec<Bucket> = self.buckets.iter().map(|b| b.to_bucket()).collect();
        let occupancy = buckets.iter().map(|b| b.len() as u16).collect();
        Segment {
            local_depth: self.local_depth,
            remap: self.remap.clone(),
            buckets,
            occupancy,
            // Acquire pairs with the Release key-count updates so the copy's
            // count matches the bucket contents just cloned.
            num_keys: self.num_keys.load(Ordering::Acquire),
            remap_streak: self.remap_streak,
        }
    }

    #[inline]
    fn bucket_of(&self, k: u64, m_total: u32) -> usize {
        self.remap.bucket_index(k, m_total - self.local_depth)
    }
}

/// A shared fine-grained segment plus the optimistic-read metadata.
/// Unlike the coarse variant's `CSeg`, the version counter brackets only
/// the structural mutations that hold `seg`'s write lock (see module doc).
struct FineSlot {
    version: AtomicU64,
    retired: AtomicBool,
    seg: RwLock<FineSegment>,
}

impl FineSlot {
    fn new(seg: FineSegment) -> Arc<FineSlot> {
        Arc::new(FineSlot {
            version: AtomicU64::new(0),
            retired: AtomicBool::new(false),
            seg: RwLock::new(seg),
        })
    }

    /// Write-locks the segment for a structural mutation, bracketing it
    /// with version bumps (odd while held).
    fn write(&self) -> FineSlotWrite<'_> {
        let guard = self.seg.write();
        self.version.fetch_add(1, Ordering::SeqCst);
        FineSlotWrite { slot: self, guard }
    }
}

/// Write guard that brackets the structural mutation with version bumps.
struct FineSlotWrite<'a> {
    slot: &'a FineSlot,
    guard: RwLockWriteGuard<'a, FineSegment>,
}

impl std::ops::Deref for FineSlotWrite<'_> {
    type Target = FineSegment;
    fn deref(&self) -> &FineSegment {
        &self.guard
    }
}

impl std::ops::DerefMut for FineSlotWrite<'_> {
    fn deref_mut(&mut self) -> &mut FineSegment {
        &mut self.guard
    }
}

impl Drop for FineSlotWrite<'_> {
    fn drop(&mut self) {
        // Runs before `guard` drops: back to even while the lock is held.
        self.slot.version.fetch_add(1, Ordering::SeqCst);
    }
}

/// Immutable directory snapshot published to readers.
struct FineSnapshot {
    generation: u64,
    global_depth: u32,
    entries: Vec<Arc<FineSlot>>,
}

struct FineDir {
    global_depth: u32,
    /// Bumped by every structural change; the snapshot must mirror it.
    generation: u64,
    entries: Vec<Arc<FineSlot>>,
}

struct FineEh {
    dir: RwLock<FineDir>,
    snap: EpochPtr<FineSnapshot>,
    num_keys: AtomicUsize,
}

impl FineEh {
    /// Re-publishes the directory as a fresh snapshot, retiring the old
    /// one through `epoch`. Caller must hold the directory write lock.
    fn publish(&self, dir: &FineDir, epoch: &Collector) {
        self.snap.swap(
            Box::new(FineSnapshot {
                generation: dir.generation,
                global_depth: dir.global_depth,
                entries: dir.entries.clone(),
            }),
            epoch,
        );
    }
}

/// Concurrent DyTIS with per-bucket locks (ablation variant; prefer
/// [`crate::ConcurrentDyTis`], which the paper found faster).
pub struct ConcurrentDyTisFine {
    params: Params,
    tables: Vec<FineEh>,
    m_total: u32,
    /// Epoch collector for retired directory snapshots.
    epoch: Collector,
    /// When set, `get`/`scan` skip the optimistic path (baseline mode).
    locked_reads: AtomicBool,
    /// Times an insert lost its fast path to contention or a pending
    /// structural fix and had to retry through `maintain`.
    insert_retries: AtomicU64,
    read_retries: AtomicU64,
    read_fallbacks: AtomicU64,
    read_locked: AtomicU64,
    splits: AtomicU64,
    expansions: AtomicU64,
    remaps: AtomicU64,
    doublings: AtomicU64,
}

impl ConcurrentDyTisFine {
    /// Creates an index with the paper's default parameters.
    pub fn new() -> Self {
        Self::with_params(Params::default())
    }

    /// Creates an index with explicit [`Params`].
    ///
    /// # Panics
    ///
    /// Panics if `first_level_bits` is outside `1..=16`.
    pub fn with_params(params: Params) -> Self {
        let r = params.first_level_bits;
        assert!((1..=16).contains(&r));
        let m_total = 64 - r;
        let tables = (0..(1usize << r))
            .map(|_| {
                let entries = vec![FineSlot::new(FineSegment::from_segment(
                    Segment::new(0),
                    params.bucket_entries,
                ))];
                FineEh {
                    snap: EpochPtr::new(Box::new(FineSnapshot {
                        generation: 0,
                        global_depth: 0,
                        entries: entries.clone(),
                    })),
                    dir: RwLock::new(FineDir {
                        global_depth: 0,
                        generation: 0,
                        entries,
                    }),
                    num_keys: AtomicUsize::new(0),
                }
            })
            .collect();
        ConcurrentDyTisFine {
            params,
            tables,
            m_total,
            epoch: Collector::new(),
            locked_reads: AtomicBool::new(false),
            insert_retries: AtomicU64::new(0),
            read_retries: AtomicU64::new(0),
            read_fallbacks: AtomicU64::new(0),
            read_locked: AtomicU64::new(0),
            splits: AtomicU64::new(0),
            expansions: AtomicU64::new(0),
            remaps: AtomicU64::new(0),
            doublings: AtomicU64::new(0),
        }
    }

    /// Totals of the structural maintenance operations performed so far.
    /// Exact once writers have quiesced; `keys_moved` is not tracked and
    /// reads 0.  The fine-grained variant never merges segments on delete
    /// (its remove path only takes a bucket latch), so `shrinks` reads 0
    /// by construction.
    pub fn maintenance_stats(&self) -> index_traits::MaintenanceStats {
        index_traits::MaintenanceStats {
            // relaxed: monotonic advisory counters; exact totals are only
            // required after the writing threads have been joined.
            splits: self.splits.load(Ordering::Relaxed),
            // relaxed: see above.
            expansions: self.expansions.load(Ordering::Relaxed),
            // relaxed: see above.
            remaps: self.remaps.load(Ordering::Relaxed),
            // relaxed: see above.
            doublings: self.doublings.load(Ordering::Relaxed),
            ..Default::default()
        }
    }

    /// Times an insert had to retry through the slow path (see field doc).
    pub fn insert_retries(&self) -> u64 {
        // relaxed: monotonic advisory counter.
        self.insert_retries.load(Ordering::Relaxed)
    }

    /// Optimistic-read retry/fallback counters (see [`ReadStats`]).
    pub fn read_stats(&self) -> ReadStats {
        ReadStats {
            // relaxed: monotonic advisory counters.
            retries: self.read_retries.load(Ordering::Relaxed),
            // relaxed: see above.
            fallbacks: self.read_fallbacks.load(Ordering::Relaxed),
            // relaxed: see above.
            locked: self.read_locked.load(Ordering::Relaxed),
        }
    }

    /// Deferred-reclamation counters of the snapshot collector.
    pub fn epoch_stats(&self) -> EpochStats {
        self.epoch.stats()
    }

    /// Forces `get`/`scan` onto the locked path (`true`) or back to
    /// optimistic reads (`false`, the default).
    pub fn set_locked_reads(&self, locked: bool) {
        // relaxed: a mode toggle; it guards no data, and either path is
        // correct at any moment.
        self.locked_reads.store(locked, Ordering::Relaxed);
    }

    #[inline]
    fn table_of(&self, key: Key) -> usize {
        (key >> (64 - self.params.first_level_bits)) as usize
    }

    #[inline]
    fn sub_key(&self, key: Key) -> u64 {
        key & mask64(self.m_total)
    }

    #[inline]
    fn dir_index(dir: &FineDir, sk: u64, m_total: u32) -> usize {
        (sk >> (m_total - dir.global_depth)) as usize
    }

    #[inline]
    fn snap_index(snap: &FineSnapshot, sk: u64, m_total: u32) -> usize {
        (sk >> (m_total - snap.global_depth)) as usize
    }

    /// Whether reads should try the optimistic path first.
    #[inline]
    fn optimistic_enabled(&self) -> bool {
        // relaxed: mode toggle, see `set_locked_reads`.
        !self.locked_reads.load(Ordering::Relaxed)
    }

    /// Routes `sk` within `seg`: target bucket index plus the remap's
    /// in-bucket slot hint (shared by both read paths).
    #[inline]
    fn route(&self, seg: &FineSegment, sk: u64) -> (usize, usize) {
        let m = self.m_total - seg.local_depth;
        let k = sk & mask64(m);
        let b = seg.bucket_of(k, self.m_total);
        let hint = seg.remap.slot_hint(k, m, self.params.bucket_entries);
        (b, hint)
    }

    /// Optimistic `get`; `None` means "fall back to the locked path".
    fn get_optimistic(&self, table: &FineEh, sk: u64, key: Key) -> Option<Option<Value>> {
        let guard = self.epoch.pin()?;
        let mut retries = 0u64;
        let mut result = None;
        // justified: bounded by READ_RETRIES, with a locked fallback in
        // the caller when the budget is exhausted.
        for _ in 0..READ_RETRIES {
            let snap = table.snap.load(&guard);
            let slot = &snap.entries[Self::snap_index(snap, sk, self.m_total)];
            let v0 = slot.version.load(Ordering::SeqCst);
            if v0 & 1 == 1 {
                retries += 1; // Structural mutation mid-flight.
                continue;
            }
            let Some(seg) = slot.seg.try_read() else {
                retries += 1; // Structural writer holds the segment.
                continue;
            };
            if slot.retired.load(Ordering::SeqCst) {
                retries += 1; // Stale snapshot: reload and re-route.
                continue;
            }
            // Lock-free bucket probe under the per-bucket seqlock — the
            // hit path of a fine-variant `get` acquires no lock at all.
            let (b, hint) = self.route(&seg, sk);
            let bucket = &seg.buckets[b];
            let mut probed = None;
            // justified: bounded by BUCKET_RETRIES; a persistently
            // contended bucket charges an outer retry instead.
            for _ in 0..BUCKET_RETRIES {
                if let Ok(v) = bucket.probe_optimistic(key, hint) {
                    probed = Some(v);
                    break;
                }
            }
            let Some(v) = probed else {
                retries += 1; // Bucket writer kept the seqlock busy.
                continue;
            };
            drop(seg);
            if slot.version.load(Ordering::SeqCst) == v0 {
                result = Some(v);
                break;
            }
            retries += 1; // Segment restructured while we probed.
        }
        if retries > 0 {
            // relaxed: monotonic advisory counter.
            self.read_retries.fetch_add(retries, Ordering::Relaxed);
            obs::counter!("read.retries").add(retries);
        }
        result
    }

    /// Locked `get`: the original two-lock path (fallback + baseline).
    fn get_locked(&self, table: &FineEh, sk: u64, key: Key) -> Option<Value> {
        // relaxed: monotonic advisory counter.
        self.read_locked.fetch_add(1, Ordering::Relaxed);
        let dir = table.dir.read();
        let seg = dir.entries[Self::dir_index(&dir, sk, self.m_total)]
            .seg
            .read();
        let (b, hint) = self.route(&seg, sk);
        seg.buckets[b].probe_locked(key, hint)
    }

    /// Fast path: directory read lock, segment read lock, ONE bucket
    /// write window. Returns false when maintenance is required.
    fn insert_fast(&self, table: &FineEh, sk: u64, key: Key, value: Value) -> bool {
        let p = &self.params;
        let dir = table.dir.read();
        let slot = Arc::clone(&dir.entries[Self::dir_index(&dir, sk, self.m_total)]);
        let seg = slot.seg.read();
        let m = self.m_total - seg.local_depth;
        let k = sk & mask64(m);
        let b = seg.bucket_of(k, self.m_total);
        let mut bucket = seg.buckets[b].write();
        if bucket.update(key, value) {
            return true;
        }
        if bucket.len() < p.bucket_entries {
            bucket.insert(key, value);
            drop(bucket);
            // Release pairs with the Acquire loads in `len()`,
            // `to_segment`, and the audit.
            seg.num_keys.fetch_add(1, Ordering::Release);
            table.num_keys.fetch_add(1, Ordering::Release);
            return true;
        }
        false
    }

    /// Maintenance under the directory write lock: runs Algorithm 1 once on
    /// a plain-segment copy, then swaps the result back in.
    fn maintain(&self, table: &FineEh, sk: u64) {
        let p = &self.params;
        let mut dir = table.dir.write();
        let idx = Self::dir_index(&dir, sk, self.m_total);
        let slot = Arc::clone(&dir.entries[idx]);
        let fine = slot.seg.read();
        let ld = fine.local_depth;
        let m = self.m_total - ld;
        let k = sk & mask64(m);
        let b = fine.bucket_of(k, self.m_total);
        if fine.buckets[b].live_len() < p.bucket_entries {
            return; // Another thread already fixed it.
        }
        let mut seg = fine.to_segment();
        drop(fine);
        let gd = dir.global_depth;
        let cap_buckets = p.segment_cap(ld, p.limit_mult);

        // Algorithm 1, one step.
        let warmup = ld < p.l_start;
        let high = seg.utilization(p) > p.utilization_threshold;
        if !warmup
            && ld < gd
            && !high
            && seg.remap_adjust(k, self.m_total, cap_buckets, p) != RemapOutcome::Failed
        {
            // In-place swap under the slot's write lock, version-bracketed:
            // optimistic readers either lose the try_read or see the
            // version move and retry. Same slot Arc, so the published
            // snapshot stays valid.
            *slot.write() = FineSegment::from_segment(seg, p.bucket_entries);
            // relaxed: monotonic stats counter, written under the directory
            // write lock.
            self.remaps.fetch_add(1, Ordering::Relaxed);
            obs::counter!("cdytis_fine.remap").inc();
            return;
        }
        if !warmup && ld == gd {
            let ok = if high {
                let ok = seg.expand(self.m_total, cap_buckets, p);
                if ok {
                    // relaxed: monotonic stats counter, written under the
                    // directory write lock.
                    self.expansions.fetch_add(1, Ordering::Relaxed);
                    obs::counter!("cdytis_fine.expand").inc();
                }
                ok
            } else {
                let ok = seg.remap_adjust(k, self.m_total, cap_buckets, p) != RemapOutcome::Failed;
                if ok {
                    // relaxed: monotonic stats counter, written under the
                    // directory write lock.
                    self.remaps.fetch_add(1, Ordering::Relaxed);
                    obs::counter!("cdytis_fine.remap").inc();
                }
                ok
            };
            if ok {
                *slot.write() = FineSegment::from_segment(seg, p.bucket_entries);
                return;
            }
        }
        // Split path (doubling first when LD == GD).
        if ld == dir.global_depth {
            let mut entries = Vec::with_capacity(dir.entries.len() * 2);
            for e in &dir.entries {
                entries.push(Arc::clone(e));
                entries.push(Arc::clone(e));
            }
            dir.entries = entries;
            dir.global_depth += 1;
            // relaxed: monotonic stats counter, written under the directory
            // write lock.
            self.doublings.fetch_add(1, Ordering::Relaxed);
            obs::counter!("cdytis_fine.double").inc();
        }
        let (left, right) = seg.split(self.m_total, p);
        let gd = dir.global_depth;
        let span = 1usize << (gd - (ld + 1));
        let idx = Self::dir_index(&dir, sk, self.m_total);
        let base = idx & !(span * 2 - 1);
        let left = FineSlot::new(FineSegment::from_segment(left, p.bucket_entries));
        let right = FineSlot::new(FineSegment::from_segment(right, p.bucket_entries));
        for e in &mut dir.entries[base..base + span] {
            *e = Arc::clone(&left);
        }
        for e in &mut dir.entries[base + span..base + 2 * span] {
            *e = Arc::clone(&right);
        }
        dir.generation += 1;
        // The victim slot was never mutated (split copies out of it), so a
        // reader still probing it under a stale snapshot sees complete
        // pre-split data; mark it retired before publishing so readers
        // that arrive later reload instead.
        slot.retired.store(true, Ordering::SeqCst);
        table.publish(&dir, &self.epoch);
        // relaxed: monotonic stats counter, written under the directory
        // write lock.
        self.splits.fetch_add(1, Ordering::Relaxed);
        obs::counter!("cdytis_fine.split").inc();
    }

    /// First bucket of a segment walk and whether it needs a lower bound:
    /// bucket indices are monotone in the key, so only the very first
    /// bucket of the first segment can hold keys `< start`.
    fn walk_start(&self, seg: &FineSegment, start_sk: u64, first_seg: bool) -> (usize, bool) {
        if first_seg {
            let m = self.m_total - seg.local_depth;
            let k = start_sk & mask64(m);
            (seg.bucket_of(k, self.m_total), true)
        } else {
            (0, false)
        }
    }

    /// Walks `seg`'s buckets lock-free under the per-bucket seqlocks,
    /// appending pairs `>= start` until `count`. `Some(done)` on success;
    /// `None` when a bucket stayed contended past its retry budget (the
    /// caller rolls back and restarts at the table level).
    fn walk_segment_optimistic(
        &self,
        seg: &FineSegment,
        start_sk: u64,
        start: Key,
        first_seg: bool,
        count: usize,
        out: &mut Vec<(Key, Value)>,
    ) -> Option<bool> {
        let (mut b, mut first_bucket) = self.walk_start(seg, start_sk, first_seg);
        let nb = seg.buckets.len();
        while b < nb {
            if out.len() >= count {
                return Some(true);
            }
            // Hint the next bucket's key array in while this one copies
            // (same rationale as `Segment::walk_from`).
            if b + 1 < nb {
                crate::simd::prefetch_slice(&seg.buckets[b + 1].keys);
            }
            let bucket = &seg.buckets[b];
            let start_key = first_bucket.then_some(start);
            let mut ok = false;
            // justified: bounded by BUCKET_RETRIES; the caller restarts
            // or falls back to the locked walk.
            for _ in 0..BUCKET_RETRIES {
                if bucket
                    .read_range_optimistic(start_key, count - out.len(), out)
                    .is_ok()
                {
                    ok = true;
                    break;
                }
            }
            if !ok {
                return None;
            }
            first_bucket = false;
            b += 1;
        }
        Some(out.len() >= count)
    }

    /// Walks `seg`'s buckets under their writer locks (fallback +
    /// baseline), appending pairs `>= start` until `count`; returns true
    /// when the scan is complete.
    fn walk_segment_locked(
        &self,
        seg: &FineSegment,
        start_sk: u64,
        start: Key,
        first_seg: bool,
        count: usize,
        out: &mut Vec<(Key, Value)>,
    ) -> bool {
        let (mut b, mut first_bucket) = self.walk_start(seg, start_sk, first_seg);
        let nb = seg.buckets.len();
        while b < nb {
            if out.len() >= count {
                return true;
            }
            if b + 1 < nb {
                crate::simd::prefetch_slice(&seg.buckets[b + 1].keys);
            }
            let start_key = first_bucket.then_some(start);
            seg.buckets[b].read_range_locked(start_key, count - out.len(), out);
            first_bucket = false;
            b += 1;
        }
        out.len() >= count
    }

    /// One optimistic attempt at scanning `table`. `Some(done)` on
    /// success; `None` when a probe failed validation (this table's
    /// contribution has been rolled back).
    #[allow(clippy::too_many_arguments)]
    fn scan_table_optimistic(
        &self,
        table: &FineEh,
        guard: &Guard<'_>,
        start_sk: u64,
        start: Key,
        from_start: bool,
        count: usize,
        out: &mut Vec<(Key, Value)>,
    ) -> Option<bool> {
        let base_len = out.len();
        // Acquire pairs with the Release increments so a table observed
        // non-empty has its inserts visible to the probes below.
        if table.num_keys.load(Ordering::Acquire) == 0 {
            return Some(out.len() >= count);
        }
        let snap = table.snap.load(guard);
        let mut idx = if from_start {
            0
        } else {
            Self::snap_index(snap, start_sk, self.m_total)
        };
        let mut first_seg = !from_start;
        while idx < snap.entries.len() {
            let slot = &snap.entries[idx];
            let v0 = slot.version.load(Ordering::SeqCst);
            let probe = if v0 & 1 == 1 {
                None
            } else {
                slot.seg.try_read()
            };
            let Some(seg) = probe else {
                out.truncate(base_len);
                return None;
            };
            if slot.retired.load(Ordering::SeqCst) {
                out.truncate(base_len);
                return None;
            }
            let span = 1usize << (snap.global_depth - seg.local_depth);
            let Some(done) =
                self.walk_segment_optimistic(&seg, start_sk, start, first_seg, count, out)
            else {
                out.truncate(base_len);
                return None;
            };
            drop(seg);
            if slot.version.load(Ordering::SeqCst) != v0 {
                out.truncate(base_len);
                return None;
            }
            if done {
                return Some(true);
            }
            first_seg = false;
            idx = (idx & !(span - 1)) + span;
        }
        Some(out.len() >= count)
    }

    /// Locked scan of one table (fallback + baseline); returns true when
    /// `count` pairs have been collected.
    fn scan_table_locked(
        &self,
        table: &FineEh,
        start_sk: u64,
        start: Key,
        from_start: bool,
        count: usize,
        out: &mut Vec<(Key, Value)>,
    ) -> bool {
        // relaxed: monotonic advisory counter.
        self.read_locked.fetch_add(1, Ordering::Relaxed);
        let dir = table.dir.read();
        // Acquire pairs with the Release increments so a table observed
        // non-empty has its inserts visible to the scan below.
        if table.num_keys.load(Ordering::Acquire) == 0 {
            return out.len() >= count;
        }
        let mut idx = if from_start {
            0
        } else {
            Self::dir_index(&dir, start_sk, self.m_total)
        };
        let mut first_seg = !from_start;
        while idx < dir.entries.len() {
            let seg = dir.entries[idx].seg.read();
            let span = 1usize << (dir.global_depth - seg.local_depth);
            if self.walk_segment_locked(&seg, start_sk, start, first_seg, count, out) {
                return true;
            }
            first_seg = false;
            idx = (idx & !(span - 1)) + span;
        }
        out.len() >= count
    }

    /// Scans one table, optimistic-first with a bounded restart budget and
    /// a locked fallback.
    fn scan_table(
        &self,
        table: &FineEh,
        start_sk: u64,
        start: Key,
        from_start: bool,
        count: usize,
        out: &mut Vec<(Key, Value)>,
    ) -> bool {
        if self.optimistic_enabled() {
            if let Some(guard) = self.epoch.pin() {
                let mut restarts = 0u64;
                // justified: bounded by SCAN_RESTARTS, with the locked
                // fallback below when the budget is exhausted.
                for _ in 0..SCAN_RESTARTS {
                    match self.scan_table_optimistic(
                        table, &guard, start_sk, start, from_start, count, out,
                    ) {
                        Some(done) => {
                            if restarts > 0 {
                                // relaxed: monotonic advisory counter.
                                self.read_retries.fetch_add(restarts, Ordering::Relaxed);
                                obs::counter!("read.retries").add(restarts);
                            }
                            return done;
                        }
                        None => restarts += 1,
                    }
                }
                if restarts > 0 {
                    // relaxed: monotonic advisory counter.
                    self.read_retries.fetch_add(restarts, Ordering::Relaxed);
                    obs::counter!("read.retries").add(restarts);
                }
            }
            // relaxed: monotonic advisory counter.
            self.read_fallbacks.fetch_add(1, Ordering::Relaxed);
            obs::counter!("read.fallbacks").inc();
        }
        self.scan_table_locked(table, start_sk, start, from_start, count, out)
    }
}

impl Default for ConcurrentDyTisFine {
    fn default() -> Self {
        Self::new()
    }
}

impl ConcurrentKvIndex for ConcurrentDyTisFine {
    fn insert(&self, key: Key, value: Value) {
        let table = &self.tables[self.table_of(key)];
        let sk = self.sub_key(key);
        let mut guard = 0u32;
        while !self.insert_fast(table, sk, key, value) {
            guard += 1;
            assert!(guard < 10_000, "fine-grained insert failed to converge");
            // relaxed: monotonic advisory counter (lock-acquisition retries).
            self.insert_retries.fetch_add(1, Ordering::Relaxed);
            obs::counter!("cdytis_fine.insert_retries").inc();
            self.maintain(table, sk);
        }
    }

    fn get(&self, key: Key) -> Option<Value> {
        let table = &self.tables[self.table_of(key)];
        let sk = self.sub_key(key);
        if self.optimistic_enabled() {
            if let Some(v) = self.get_optimistic(table, sk, key) {
                return v;
            }
            // relaxed: monotonic advisory counter.
            self.read_fallbacks.fetch_add(1, Ordering::Relaxed);
            obs::counter!("read.fallbacks").inc();
        }
        self.get_locked(table, sk, key)
    }

    fn remove(&self, key: Key) -> Option<Value> {
        let table = &self.tables[self.table_of(key)];
        let sk = self.sub_key(key);
        let dir = table.dir.read();
        let seg = dir.entries[Self::dir_index(&dir, sk, self.m_total)]
            .seg
            .read();
        let m = self.m_total - seg.local_depth;
        let k = sk & mask64(m);
        let b = seg.bucket_of(k, self.m_total);
        let v = seg.buckets[b].write().remove(key)?;
        // Release pairs with the Acquire loads in `len()`, `to_segment`,
        // and the audit.
        seg.num_keys.fetch_sub(1, Ordering::Release);
        table.num_keys.fetch_sub(1, Ordering::Release);
        Some(v)
    }

    fn scan(&self, start: Key, count: usize, out: &mut Vec<(Key, Value)>) {
        let first = self.table_of(start);
        let start_sk = self.sub_key(start);
        if self.scan_table(&self.tables[first], start_sk, start, false, count, out) {
            return;
        }
        for table in &self.tables[first + 1..] {
            if self.scan_table(table, 0, 0, true, count, out) {
                return;
            }
        }
    }

    fn len(&self) -> usize {
        self.tables
            .iter()
            // Acquire pairs with the Release key-count updates so `len()`
            // reflects every completed insert/remove.
            .map(|t| t.num_keys.load(Ordering::Acquire))
            .sum()
    }

    fn name(&self) -> &'static str {
        "DyTIS (bucket-locked)"
    }
}

impl Auditable for ConcurrentDyTisFine {
    /// Deep audit under the documented lock order: per table, directory
    /// read lock, then each segment's read lock, then each bucket lock (via
    /// the plain-segment conversion). Must not be called by a thread
    /// already holding one of this index's locks.
    ///
    /// Also audits the optimistic-read machinery: even slot versions under
    /// the segment read lock, no retired-but-reachable slots, snapshot
    /// coherence, and epoch quiescence (see the coarse variant).
    fn audit(&self) -> AuditReport {
        let mut report = AuditReport::new("DyTIS (bucket-locked)");
        for (t, table) in self.tables.iter().enumerate() {
            let dir = table.dir.read();
            let gd = dir.global_depth;
            report.check(dir.entries.len() == 1usize << gd, "dir-size", || {
                (
                    format!("table {t}"),
                    format!("directory has {} entries at GD {gd}", dir.entries.len()),
                )
            });
            let mut total = 0usize;
            let mut last_key: Option<Key> = None;
            let mut idx = 0usize;
            while idx < dir.entries.len() {
                let slot = &dir.entries[idx];
                let fine = slot.seg.read();
                // Structural writers hold the segment write lock across
                // their odd-version window, which our read lock excludes.
                let v = slot.version.load(Ordering::SeqCst);
                report.check(v & 1 == 0, "seg-version-even", || {
                    (
                        format!("table {t} / dir[{idx}]"),
                        format!("version {v} is odd with no writer able to hold the lock"),
                    )
                });
                report.check(!slot.retired.load(Ordering::SeqCst), "seg-live", || {
                    (
                        format!("table {t} / dir[{idx}]"),
                        "directory-reachable segment is marked retired".into(),
                    )
                });
                let ld = fine.local_depth;
                if !report.check(ld <= gd, "local-depth", || {
                    (
                        format!("table {t} / dir[{idx}]"),
                        format!("local_depth {ld} exceeds global_depth {gd}"),
                    )
                }) {
                    idx += 1;
                    continue;
                }
                let span = 1usize << (gd - ld);
                report.check(idx.is_multiple_of(span), "dir-alignment", || {
                    (
                        format!("table {t} / dir[{idx}]"),
                        format!("segment (span {span}) starts unaligned"),
                    )
                });
                let end = (idx + span).min(dir.entries.len());
                report.check(
                    dir.entries[idx..end]
                        .iter()
                        .all(|e| Arc::ptr_eq(e, &dir.entries[idx])),
                    "dir-coverage",
                    || {
                        (
                            format!("table {t} / dir[{idx}..{end}]"),
                            "span mixes directory targets".into(),
                        )
                    },
                );
                let loc = format!("table {t} / dir[{idx}]");
                let seg = fine.to_segment();
                crate::audit::audit_segment(&seg, self.m_total, &self.params, &loc, &mut report);
                if let Some((first, last)) = crate::audit::segment_key_bounds(&seg) {
                    let prefix = (idx / span) as u64;
                    let shift = self.m_total - ld;
                    for key in [first, last] {
                        let sk = key & mask64(self.m_total);
                        report.check(ld == 0 || sk >> shift == prefix, "key-range", || {
                            (
                                loc.clone(),
                                format!("key {key:#x} outside directory prefix {prefix:#x}"),
                            )
                        });
                    }
                    report.check(
                        last_key.is_none_or(|p| p < first),
                        "table-key-order",
                        || {
                            (
                                loc.clone(),
                                format!(
                                    "first key {first:#x} not above previous segment's {last_key:?}"
                                ),
                            )
                        },
                    );
                    last_key = Some(last);
                }
                total += seg.num_keys;
                idx += span;
            }
            report.check(
                total == table.num_keys.load(Ordering::Acquire),
                "table-key-count",
                || {
                    (
                        format!("table {t}"),
                        format!(
                            "segments hold {total} keys, table claims {}",
                            table.num_keys.load(Ordering::Acquire)
                        ),
                    )
                },
            );
            // Snapshot coherence: publishes happen under the directory
            // write lock, which our read lock excludes.
            if let Some(guard) = self.epoch.pin() {
                let snap = table.snap.load(&guard);
                let coherent = snap.generation == dir.generation
                    && snap.global_depth == dir.global_depth
                    && snap.entries.len() == dir.entries.len()
                    && snap
                        .entries
                        .iter()
                        .zip(&dir.entries)
                        .all(|(a, b)| Arc::ptr_eq(a, b));
                report.check(coherent, "dir-snapshot-coherent", || {
                    (
                        format!("table {t}"),
                        format!(
                            "snapshot gen {} / GD {} / {} entries vs directory gen {} / GD {} / {} entries",
                            snap.generation,
                            snap.global_depth,
                            snap.entries.len(),
                            dir.generation,
                            dir.global_depth,
                            dir.entries.len()
                        ),
                    )
                });
            }
        }
        // Epoch quiescence, self-skipping under concurrent reader pins —
        // see the coarse variant for the race analysis.
        // justified: bounded to 4 rounds, then the check is skipped.
        for _ in 0..4 {
            if !self.epoch.quiescent() {
                break;
            }
            self.epoch.collect();
            let pending = self.epoch.stats().pending;
            if !self.epoch.quiescent() {
                // A reader pinned mid-collect: the pending count is not
                // evidence of a leak. Retry the round.
                continue;
            }
            report.check(pending == 0, "epoch-quiescent", || {
                (
                    "epoch collector".into(),
                    format!("{pending} garbage item(s) survive a quiescent collect"),
                )
            });
            break;
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ConcurrentDyTisFine {
        ConcurrentDyTisFine::with_params(Params::small())
    }

    #[test]
    fn single_thread_roundtrip() {
        let idx = small();
        for k in 0..6_000u64 {
            idx.insert(k * 3, k);
        }
        assert_eq!(idx.len(), 6_000);
        for k in (0..6_000u64).step_by(71) {
            assert_eq!(idx.get(k * 3), Some(k));
        }
        let mut out = Vec::new();
        idx.scan(0, 500, &mut out);
        assert_eq!(out.len(), 500);
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn locked_read_mode_matches_optimistic() {
        let idx = small();
        for k in 0..6_000u64 {
            idx.insert(k.wrapping_mul(0x9E3779B97F4A7C15), k);
        }
        idx.set_locked_reads(true);
        for k in (0..6_000u64).step_by(31) {
            assert_eq!(idx.get(k.wrapping_mul(0x9E3779B97F4A7C15)), Some(k));
        }
        let mut locked = Vec::new();
        idx.scan(0, 500, &mut locked);
        idx.set_locked_reads(false);
        for k in (0..6_000u64).step_by(31) {
            assert_eq!(idx.get(k.wrapping_mul(0x9E3779B97F4A7C15)), Some(k));
        }
        let mut optimistic = Vec::new();
        idx.scan(0, 500, &mut optimistic);
        assert_eq!(locked, optimistic);
    }

    #[test]
    fn maintenance_retires_snapshots_through_the_collector() {
        let idx = small();
        for k in 0..6_000u64 {
            idx.insert(k * 3, k);
        }
        let st = idx.epoch_stats();
        assert!(st.deferred > 0, "splits must retire old snapshots");
        assert_eq!(st.freed, st.deferred);
        assert_eq!(st.pending, 0);
    }

    #[test]
    fn concurrent_inserts_roundtrip() {
        let idx = std::sync::Arc::new(small());
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let idx = std::sync::Arc::clone(&idx);
                std::thread::spawn(move || {
                    for i in 0..8_000u64 {
                        let k = (t * 8_000 + i).wrapping_mul(0x9E3779B97F4A7C15);
                        idx.insert(k, i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("writer");
        }
        assert_eq!(idx.len(), 32_000);
        for t in 0..4u64 {
            for i in (0..8_000u64).step_by(333) {
                let k = (t * 8_000 + i).wrapping_mul(0x9E3779B97F4A7C15);
                assert_eq!(idx.get(k), Some(i));
            }
        }
    }

    #[test]
    fn removes_work() {
        let idx = small();
        for k in 0..5_000u64 {
            idx.insert(k, k);
        }
        for k in 0..2_500u64 {
            assert_eq!(idx.remove(k), Some(k));
        }
        assert_eq!(idx.len(), 2_500);
        assert_eq!(idx.get(0), None);
        assert_eq!(idx.get(3_000), Some(3_000));
    }

    #[test]
    fn audit_clean_after_growth() {
        let idx = small();
        for k in 0..10_000u64 {
            idx.insert(k.wrapping_mul(0x9E3779B97F4A7C15), k);
        }
        let report = idx.audit();
        assert!(report.checks > 10_000);
        report.assert_clean();
    }

    #[test]
    fn audit_detects_corrupted_segment_key_count() {
        let idx = small();
        for k in 0..2_000u64 {
            idx.insert(k, k);
        }
        idx.audit().assert_clean();
        {
            let dir = idx.tables[0].dir.read();
            let seg = dir.entries[0].seg.read();
            seg.num_keys.fetch_add(1, Ordering::Release);
        }
        let report = idx.audit();
        assert!(!report.is_clean());
        assert!(report
            .violations
            .iter()
            .any(|v| v.invariant == "segment-key-count" || v.invariant == "table-key-count"));
    }

    #[test]
    fn audit_detects_torn_slot_version() {
        let idx = small();
        for k in 0..2_000u64 {
            idx.insert(k, k);
        }
        idx.audit().assert_clean();
        // SEEDED CORRUPTION: an odd version with no structural writer.
        {
            let dir = idx.tables[0].dir.read();
            dir.entries[0].version.fetch_add(1, Ordering::SeqCst);
        }
        let report = idx.audit();
        assert!(report
            .violations
            .iter()
            .any(|v| v.invariant == "seg-version-even"));
    }

    #[test]
    fn audit_detects_stale_snapshot() {
        let idx = small();
        for k in 0..2_000u64 {
            idx.insert(k, k);
        }
        idx.audit().assert_clean();
        // SEEDED CORRUPTION: a snapshot that does not mirror the directory.
        {
            let dir = idx.tables[0].dir.read();
            idx.tables[0].snap.swap(
                Box::new(FineSnapshot {
                    generation: dir.generation + 999,
                    global_depth: dir.global_depth,
                    entries: dir.entries.clone(),
                }),
                &idx.epoch,
            );
        }
        let report = idx.audit();
        assert!(report
            .violations
            .iter()
            .any(|v| v.invariant == "dir-snapshot-coherent"));
    }

    #[test]
    fn readers_race_writers() {
        let idx = std::sync::Arc::new(small());
        for k in 0..5_000u64 {
            idx.insert(k * 2, k);
        }
        let writer = {
            let idx = std::sync::Arc::clone(&idx);
            std::thread::spawn(move || {
                for k in 5_000..20_000u64 {
                    idx.insert(k * 2, k);
                }
            })
        };
        let mut hits = 0usize;
        for _ in 0..3 {
            for k in 0..5_000u64 {
                if idx.get(k * 2) == Some(k) {
                    hits += 1;
                }
            }
        }
        writer.join().expect("writer");
        assert_eq!(hits, 15_000);
        assert_eq!(idx.len(), 20_000);
    }
}
