//! Epoch-based reclamation for the optimistic read path (DESIGN.md §14).
//!
//! The concurrent DyTIS variants publish their directory as an immutable
//! snapshot behind an [`EpochPtr`]. Readers [`Collector::pin`] an epoch
//! guard, load the snapshot, and probe without ever taking the directory
//! lock; maintenance swaps in a fresh snapshot and *retires* the old one
//! through the collector, which frees it only once every reader that could
//! have observed it has unpinned. The protocol is the classic
//! epoch/quiescent-state scheme (cf. crossbeam-epoch), shrunk to the two
//! operations this crate needs and built on the loom-switchable
//! [`crate::sync`] facade so the whole lifecycle is model-checkable.
//!
//! # Protocol
//!
//! * A global epoch counter is bumped by every [`Collector::retire`]; the
//!   retired item is stamped with the pre-bump value.
//! * A reader pins by claiming one of [`SLOTS`] announcement slots
//!   (CAS `IDLE` → observed epoch), then **validating** that the global
//!   epoch still equals what it announced, re-announcing on a miss. Once
//!   validation succeeds, every retire that could free memory the reader
//!   can still reach carries a stamp ≥ the announced epoch (see the
//!   ordering argument on [`Collector::pin`]).
//! * [`Collector::collect`] frees garbage whose stamp is strictly below
//!   the minimum announced epoch.
//!
//! All atomics use `SeqCst`: the correctness argument below is a
//! sequential-consistency argument, the loom shim explores SC
//! interleavings only, and the read path is already dominated by cache
//! misses, not fence cost.
//!
//! # Bounded, with a fallback
//!
//! `pin` can fail (all slots busy, or the epoch keeps advancing past the
//! validation cap). Callers must treat `None` as "take the locked read
//! path instead" — the optimistic path is an optimization, never a
//! liveness requirement. This keeps every retry loop in this module
//! statically bounded (see `xtask lint`'s `unbounded-retry` rule).

// This module is the crate's one unsafe boundary: `EpochPtr` manages raw
// boxes whose lifetime the collector's pin protocol governs. Each unsafe
// block carries a `// justified:` argument; Miri runs the unit tests below
// and the TSan job runs the integration surface.
#![allow(unsafe_code)]

use crate::sync::atomic::{AtomicU64, Ordering::SeqCst};
use crate::sync::Mutex;
use std::any::Any;
use std::cell::Cell;

/// Number of announcement slots — an upper bound on concurrently pinned
/// readers. Excess readers fall back to the locked path. Kept tiny under
/// loom so a collect scan costs 4 scheduling points instead of 64.
#[cfg(not(loom))]
pub const SLOTS: usize = 64;
#[cfg(loom)]
pub const SLOTS: usize = 4;

/// Slot value meaning "no reader announced here".
const IDLE: u64 = u64::MAX;

/// Cap on re-validation rounds in [`Collector::pin`] before giving up.
const PIN_ATTEMPTS: usize = 16;

thread_local! {
    /// Start the slot scan where this thread last succeeded, so steady-state
    /// readers don't all fight over slot 0. Under loom, model threads are
    /// fresh OS threads each execution, so the hint replays deterministically.
    static SLOT_HINT: Cell<usize> = const { Cell::new(0) };
}

/// Deferred-free counters; see [`Collector::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EpochStats {
    /// Total items handed to [`Collector::retire`] so far.
    pub deferred: u64,
    /// Of those, how many have actually been dropped.
    pub freed: u64,
    /// Items still parked in the garbage list (`deferred - freed`).
    pub pending: usize,
}

/// The reclamation authority: global epoch, reader announcements, and the
/// stamped garbage list.
pub struct Collector {
    global: AtomicU64,
    slots: [AtomicU64; SLOTS],
    garbage: Mutex<Vec<(u64, Box<dyn Any + Send>)>>,
    deferred: AtomicU64,
    freed: AtomicU64,
}

impl Collector {
    /// Creates an empty collector at epoch 0 with all slots idle.
    pub fn new() -> Self {
        Collector {
            global: AtomicU64::new(0),
            slots: std::array::from_fn(|_| AtomicU64::new(IDLE)),
            garbage: Mutex::new(Vec::new()),
            deferred: AtomicU64::new(0),
            freed: AtomicU64::new(0),
        }
    }

    /// Pins the calling thread into the current epoch. Returns `None` when
    /// every slot is taken or the epoch outruns the validation cap — the
    /// caller must fall back to its locked path.
    ///
    /// Why validation makes the guard sound (SC argument): the reader
    /// stores `e` into its slot, then re-loads the global epoch and only
    /// succeeds if it still reads `e`. Any `retire` whose stamp is `s < e`
    /// performed its `fetch_add` (publishing `s+1 ≤ e`) before the reader's
    /// validating load, and its unlink (the [`EpochPtr::swap`]) precedes
    /// that `fetch_add` in program order — so the reader's subsequent
    /// [`EpochPtr::load`] cannot observe the retired pointer. Any retire
    /// with stamp `s ≥ e` can only be freed once `min_pinned() > s ≥ e`,
    /// and the reader's announced `e` (stored before the validating load,
    /// read by `collect` after the `fetch_add`) keeps `min_pinned() ≤ e`
    /// until the guard drops.
    pub fn pin(&self) -> Option<Guard<'_>> {
        let hint = SLOT_HINT.with(Cell::get).min(SLOTS - 1);
        let mut e = self.global.load(SeqCst);
        // Claim a slot: one CAS attempt per slot, starting at the hint.
        let mut slot = None;
        for i in 0..SLOTS {
            let s = (hint + i) % SLOTS;
            if self.slots[s]
                .compare_exchange(IDLE, e, SeqCst, SeqCst)
                .is_ok()
            {
                slot = Some(s);
                break;
            }
        }
        let slot = slot?;
        // Validate (bounded): the announcement only protects epochs ≥ the
        // announced value, so it must not lag the global epoch.
        for _ in 0..PIN_ATTEMPTS {
            let now = self.global.load(SeqCst);
            if now == e {
                SLOT_HINT.with(|h| h.set(slot));
                return Some(Guard {
                    collector: self,
                    slot,
                });
            }
            e = now;
            self.slots[slot].store(e, SeqCst);
        }
        // Retiring traffic is outrunning us; release the slot and let the
        // caller take its locked fallback.
        self.slots[slot].store(IDLE, SeqCst);
        None
    }

    /// Hands `item` to the collector: it is dropped only once every reader
    /// pinned at or before the current epoch has unpinned. Advances the
    /// global epoch and opportunistically collects.
    pub fn retire(&self, item: Box<dyn Any + Send>) {
        let stamp = self.global.fetch_add(1, SeqCst);
        self.deferred.fetch_add(1, SeqCst);
        obs::counter!("epoch.deferred_frees").inc();
        self.garbage.lock().push((stamp, item));
        self.collect();
    }

    /// Smallest announced epoch, or `u64::MAX` when no reader is pinned.
    fn min_pinned(&self) -> u64 {
        let mut min = u64::MAX;
        for s in &self.slots {
            min = min.min(s.load(SeqCst));
        }
        min
    }

    /// Drops every garbage item stamped strictly below the minimum pinned
    /// epoch; returns how many were freed.
    pub fn collect(&self) -> usize {
        let min = self.min_pinned();
        let mut garbage = self.garbage.lock();
        let before = garbage.len();
        garbage.retain(|&(stamp, _)| stamp >= min);
        let freed = before - garbage.len();
        drop(garbage);
        if freed > 0 {
            self.freed.fetch_add(freed as u64, SeqCst);
        }
        freed
    }

    /// True when no reader is currently pinned. Racy by nature — only
    /// meaningful from contexts that exclude new pins (e.g. audits holding
    /// the structure's write locks) or as a heuristic.
    pub fn quiescent(&self) -> bool {
        self.min_pinned() == u64::MAX
    }

    /// Deferred/freed/pending counters (always-on, like
    /// `maintenance_stats`).
    pub fn stats(&self) -> EpochStats {
        let deferred = self.deferred.load(SeqCst);
        let freed = self.freed.load(SeqCst);
        EpochStats {
            deferred,
            freed,
            pending: self.garbage.lock().len(),
        }
    }

    /// SEEDED BUG (tests only): frees all garbage *ignoring* reader pins.
    /// Exists so the loom reclamation model can demonstrate that the pin
    /// protocol is load-bearing: with this in place of [`collect`], the
    /// model finds a use-after-retire counterexample.
    #[cfg(any(test, loom))]
    pub fn collect_ignoring_pins(&self) -> usize {
        let mut garbage = self.garbage.lock();
        let freed = garbage.len();
        garbage.clear();
        drop(garbage);
        if freed > 0 {
            self.freed.fetch_add(freed as u64, SeqCst);
        }
        freed
    }

    /// SEEDED CORRUPTION (tests only): parks `item` with an uncollectable
    /// stamp so it survives every collect — used to prove the audit layer's
    /// epoch-quiescence check fires.
    #[cfg(any(test, loom))]
    pub fn retire_uncollectable(&self, item: Box<dyn Any + Send>) {
        self.deferred.fetch_add(1, SeqCst);
        self.garbage.lock().push((u64::MAX, item));
    }
}

impl Default for Collector {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Collector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Collector")
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

/// Proof of a pinned epoch; readers hold one across every snapshot
/// dereference. Dropping it un-announces the slot.
pub struct Guard<'c> {
    collector: &'c Collector,
    slot: usize,
}

impl Drop for Guard<'_> {
    fn drop(&mut self) {
        self.collector.slots[self.slot].store(IDLE, SeqCst);
    }
}

/// An atomically swappable, epoch-reclaimed box: the publication point of
/// the directory snapshot.
///
/// # Contract
///
/// Every replacement must go through [`EpochPtr::swap`] with the *same*
/// [`Collector`] that readers pin against; the pointee is immutable while
/// published. Under that contract, [`EpochPtr::load`] is safe to call with
/// a live guard (see the ordering argument on [`Collector::pin`]).
pub struct EpochPtr<T: Send + 'static> {
    ptr: crate::sync::atomic::AtomicPtr<T>,
}

// justified: EpochPtr owns its pointee like Box<T> does (last pointer is
// freed on drop, earlier ones via the collector), so Send/Sync bounds
// mirror Box: sharing &EpochPtr hands out &T (needs T: Sync) and moving it
// moves the T (needs T: Send).
unsafe impl<T: Send + Sync + 'static> Send for EpochPtr<T> {}
// justified: see above — &EpochPtr only exposes &T and the atomic pointer.
unsafe impl<T: Send + Sync + 'static> Sync for EpochPtr<T> {}

impl<T: Send + 'static> EpochPtr<T> {
    /// Publishes `value` as the initial pointee.
    pub fn new(value: Box<T>) -> Self {
        EpochPtr {
            ptr: crate::sync::atomic::AtomicPtr::new(Box::into_raw(value)),
        }
    }

    /// Dereferences the current pointee under an epoch guard. The returned
    /// borrow is valid for the guard's lifetime: a concurrent `swap` only
    /// *retires* the old box, and the collector cannot free it while the
    /// guard's slot stays announced.
    pub fn load<'g>(&self, _guard: &'g Guard<'_>) -> &'g T {
        let p = self.ptr.load(SeqCst);
        // justified: p was published by `new` or `swap` (both via
        // Box::into_raw, never null) and cannot have been freed: frees go
        // through the collector, which the caller's guard pins (see the
        // SC argument on Collector::pin).
        unsafe { &*p }
    }

    /// Publishes `new` and retires the previous pointee through
    /// `collector`.
    pub fn swap(&self, new: Box<T>, collector: &Collector) {
        let old = self.ptr.swap(Box::into_raw(new), SeqCst);
        // justified: `old` came from Box::into_raw in `new`/`swap` and is
        // unlinked by this swap — no future load can return it, and
        // in-flight readers are covered by the collector's pin protocol,
        // which defers the actual drop.
        collector.retire(unsafe { Box::from_raw(old) });
    }
}

impl<T: Send + 'static> Drop for EpochPtr<T> {
    fn drop(&mut self) {
        let p = *self.ptr.get_mut();
        // justified: &mut self proves no reader holds a borrow; the current
        // pointee is owned by this EpochPtr (swap retired all predecessors),
        // so reconstituting the Box here frees it exactly once.
        unsafe {
            drop(Box::from_raw(p));
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    /// Drop-counting payload so tests observe exactly when frees happen.
    struct Tracked(Arc<AtomicUsize>);
    impl Drop for Tracked {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn tracked(drops: &Arc<AtomicUsize>) -> Box<Tracked> {
        Box::new(Tracked(Arc::clone(drops)))
    }

    #[test]
    fn unpinned_retire_frees_immediately() {
        let drops = Arc::new(AtomicUsize::new(0));
        let c = Collector::new();
        c.retire(tracked(&drops));
        assert_eq!(drops.load(Ordering::SeqCst), 1);
        let st = c.stats();
        assert_eq!((st.deferred, st.freed, st.pending), (1, 1, 0));
    }

    #[test]
    fn pinned_reader_defers_the_free() {
        let drops = Arc::new(AtomicUsize::new(0));
        let c = Collector::new();
        let guard = c.pin().expect("fresh collector must pin");
        c.retire(tracked(&drops));
        c.collect();
        assert_eq!(drops.load(Ordering::SeqCst), 0, "freed under a pin");
        assert_eq!(c.stats().pending, 1);
        drop(guard);
        c.collect();
        assert_eq!(drops.load(Ordering::SeqCst), 1);
        assert_eq!(c.stats().pending, 0);
        assert!(c.quiescent());
    }

    #[test]
    fn older_garbage_frees_under_a_newer_pin() {
        let drops = Arc::new(AtomicUsize::new(0));
        let c = Collector::new();
        c.retire(tracked(&drops)); // stamp 0, freed immediately (no pins)
        let _guard = c.pin().expect("pin"); // pinned at epoch 1
        c.retire(tracked(&drops)); // stamp 1: reader may hold it
        assert_eq!(drops.load(Ordering::SeqCst), 1);
        assert_eq!(c.stats().pending, 1);
    }

    #[test]
    fn pin_exhaustion_falls_back_to_none() {
        let c = Collector::new();
        let guards: Vec<_> = (0..SLOTS).map(|_| c.pin().expect("slot")).collect();
        assert!(c.pin().is_none(), "no slot left; caller must take locks");
        drop(guards);
        assert!(c.pin().is_some());
    }

    #[test]
    fn epoch_ptr_swap_retires_and_drop_frees_current() {
        let drops = Arc::new(AtomicUsize::new(0));
        let c = Collector::new();
        let p = EpochPtr::new(tracked(&drops));
        let guard = c.pin().expect("pin");
        let _borrow = p.load(&guard);
        p.swap(tracked(&drops), &c);
        assert_eq!(drops.load(Ordering::SeqCst), 0, "old box freed under pin");
        drop(guard);
        c.collect();
        assert_eq!(drops.load(Ordering::SeqCst), 1, "old box freed after unpin");
        drop(p);
        assert_eq!(drops.load(Ordering::SeqCst), 2, "drop frees the live box");
    }

    #[test]
    fn seeded_collect_ignoring_pins_frees_under_a_pin() {
        // The seeded bug the loom model catches: without honoring pins the
        // free happens while a reader is still announced.
        let drops = Arc::new(AtomicUsize::new(0));
        let c = Collector::new();
        let _guard = c.pin().expect("pin");
        c.retire(tracked(&drops));
        assert_eq!(drops.load(Ordering::SeqCst), 0);
        c.collect_ignoring_pins();
        assert_eq!(drops.load(Ordering::SeqCst), 1, "bug frees despite pin");
    }

    #[test]
    fn uncollectable_garbage_survives_quiescent_collect() {
        let c = Collector::new();
        c.retire_uncollectable(Box::new(0u64));
        c.collect();
        assert!(c.quiescent());
        assert_eq!(c.stats().pending, 1, "seeded corruption never collects");
    }
}
