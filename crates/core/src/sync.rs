//! Synchronization facade for the concurrent DyTIS variants.
//!
//! Everything the two-level locking protocol of §3.4 touches — directory
//! and segment locks, per-bucket mutexes, maintenance counters — is
//! imported from here instead of `parking_lot`/`std::sync` directly, so
//! one compile-time switch swaps the whole protocol onto the loom model
//! checker:
//!
//! * default build: `parking_lot` locks and `std` atomics (identical to
//!   the pre-facade code, zero overhead);
//! * `RUSTFLAGS="--cfg loom"`: the `compat/loom` shim, whose primitives
//!   are scheduling points of a bounded exhaustive interleaving search
//!   (see `tests/loom_models.rs` and DESIGN.md §12).
//!
//! New concurrent code in this crate must use these re-exports; importing
//! `parking_lot` or `std::sync::atomic` directly in a concurrent module
//! silently opts the code out of model checking.

#[cfg(not(loom))]
pub use parking_lot::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
#[cfg(not(loom))]
pub use std::sync::atomic;
#[cfg(not(loom))]
pub use std::sync::Arc;

#[cfg(loom)]
pub use loom::sync::atomic;
#[cfg(loom)]
pub use loom::sync::{Arc, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
