//! Checkpoint / restore for DyTIS.
//!
//! Data management systems checkpoint their indexes across restarts. DyTIS
//! needs no training, so the natural checkpoint is simply the sorted pair
//! stream: restoring replays it through normal inserts, and the remapping
//! functions re-learn the distribution on the way in (they converge
//! immediately because the stream is sorted — every segment sees its final
//! key set before overflowing twice).
//!
//! Checkpoints are written in the `DYTIS2` format of
//! [`durability::checkpoint`]: magic `DYTIS2\0\0` (8 bytes), key count
//! (u64), `count` key/value pairs (16 bytes each) in ascending key order,
//! then a CRC-64/XZ of everything after the magic. [`load_from`] also
//! accepts the seed's `DYTIS1` format, which differs only in its trailing
//! checksum — an XOR-rotate fold whose invertibility admits trivial second
//! preimages (see `fold_collision_caught_by_crc64` below); `DYTIS1` is
//! read-only legacy, never written.

use crate::{DyTis, Params};
use index_traits::{Key, KvIndex};
use std::io::{self, Read, Write};

/// File magic of the legacy v1 checkpoint format (read-only support).
pub const MAGIC_V1: [u8; 8] = *b"DYTIS1\0\0";

/// File magic of the current checkpoint format (re-exported from
/// [`durability::checkpoint`]).
pub const MAGIC: [u8; 8] = durability::CKPT_MAGIC;

/// Writes a `DYTIS2` checkpoint of `index` to `w`.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn save_to<W: Write>(index: &DyTis, w: &mut W) -> io::Result<()> {
    durability::save_index(index, w)
}

/// Restores a checkpoint written by [`save_to`] (or by the seed's v1
/// writer), building the index with `params`.
///
/// # Errors
///
/// Returns `InvalidData` on bad magic, truncated streams, unsorted pairs, or
/// checksum mismatch, besides propagating I/O errors.
pub fn load_from<R: Read>(r: &mut R, params: Params) -> io::Result<DyTis> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    let mut index = DyTis::with_params(params);
    if magic == MAGIC {
        durability::load_body(r, |k, v| index.insert(k, v))?;
    } else if magic == MAGIC_V1 {
        load_v1_body(r, &mut index)?;
    } else {
        return Err(bad("bad magic"));
    }
    // Debug-build hook: a freshly recovered index must satisfy every
    // structural invariant before it is handed to the caller.
    #[cfg(debug_assertions)]
    index_traits::Auditable::audit(&index).assert_clean();
    Ok(index)
}

/// Reads the body of a legacy `DYTIS1` stream (after the magic): count,
/// sorted pairs, XOR-rotate fold checksum.
fn load_v1_body<R: Read>(r: &mut R, index: &mut DyTis) -> io::Result<()> {
    let n = read_u64(r)?;
    let mut checksum = fold(n, 0);
    let mut prev: Option<Key> = None;
    for _ in 0..n {
        let k = read_u64(r)?;
        let v = read_u64(r)?;
        if let Some(p) = prev {
            if p >= k {
                return Err(bad("checkpoint pairs out of order"));
            }
        }
        prev = Some(k);
        checksum = fold(k, checksum);
        checksum = fold(v, checksum);
        index.insert(k, v);
    }
    let expect = read_u64(r)?;
    if expect != checksum {
        return Err(bad("checksum mismatch"));
    }
    Ok(())
}

/// A write-ahead log of individual operations, complementing [`save_to`]
/// checkpoints: recovery = load the latest checkpoint, then [`replay`] the
/// log written since.
///
/// This is the seed's single-threaded, unchecksummed logger, kept for the
/// simple embedded use case. The production path — CRC64-framed records,
/// group commit, crash-point-tested recovery — lives in the `durability`
/// crate (`durability::Wal`) and is what `kvstore`'s durable store uses.
///
/// Record format (little-endian): op byte (1 = insert, 2 = remove), key
/// (u64), value (u64; zero for removes). A torn final record (crash during
/// append) is tolerated and ignored by [`replay`].
pub struct Wal<W: Write> {
    w: W,
}

impl<W: Write> Wal<W> {
    /// Wraps a writer (typically an append-mode, buffered file).
    pub fn new(w: W) -> Self {
        Wal { w }
    }

    /// Appends an insert/update record.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn log_insert(&mut self, key: Key, value: u64) -> io::Result<()> {
        self.w.write_all(&[1u8])?;
        self.w.write_all(&key.to_le_bytes())?;
        self.w.write_all(&value.to_le_bytes())
    }

    /// Appends a remove record.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn log_remove(&mut self, key: Key) -> io::Result<()> {
        self.w.write_all(&[2u8])?;
        self.w.write_all(&key.to_le_bytes())?;
        self.w.write_all(&0u64.to_le_bytes())
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn into_inner(mut self) -> io::Result<W> {
        self.w.flush()?;
        Ok(self.w)
    }
}

/// Replays a WAL stream into `index`, returning the number of applied
/// records. A torn trailing record is ignored; a corrupt op byte is an
/// error.
///
/// # Errors
///
/// Returns `InvalidData` for unknown op bytes, besides propagating I/O
/// errors.
pub fn replay<R: Read>(r: &mut R, index: &mut DyTis) -> io::Result<usize> {
    let mut applied = 0usize;
    let mut rec = [0u8; 17];
    loop {
        // Read one record, tolerating EOF mid-record (torn final write).
        let mut got = 0usize;
        while got < rec.len() {
            match r.read(&mut rec[got..]) {
                Ok(0) => {
                    return if got == 0 || got < rec.len() {
                        Ok(applied)
                    } else {
                        unreachable!("loop exits before a full record")
                    };
                }
                Ok(n) => got += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        // invariant: both subslices of the 17-byte record are 8 bytes long.
        let key = u64::from_le_bytes(rec[1..9].try_into().expect("fixed slice"));
        // invariant: both subslices of the 17-byte record are 8 bytes long.
        let value = u64::from_le_bytes(rec[9..17].try_into().expect("fixed slice"));
        match rec[0] {
            1 => index.insert(key, value),
            2 => {
                index.remove(key);
            }
            op => return Err(bad(&format!("unknown WAL op {op}"))),
        }
        applied += 1;
    }
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// The legacy v1 XOR-rotate fold — order-sensitive and cheap, but every
/// step is invertible (rotate, XOR, and multiply-by-odd are all
/// bijections), so a tampered word can be compensated by a second edit
/// anywhere later in the stream. Kept only to read `DYTIS1` checkpoints.
#[inline]
fn fold(x: u64, acc: u64) -> u64 {
    (acc.rotate_left(17) ^ x).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample_index() -> DyTis {
        let mut idx = DyTis::with_params(Params::small());
        for k in 0..5_000u64 {
            idx.insert(k.wrapping_mul(0x9E3779B97F4A7C15) >> 1, k);
        }
        idx
    }

    /// The seed's v1 checkpoint writer, preserved verbatim so back-compat
    /// and the fold-collision regression keep a faithful byte source.
    fn save_v1(pairs: &[(u64, u64)], buf: &mut Vec<u8>) {
        buf.extend_from_slice(&MAGIC_V1);
        let n = pairs.len() as u64;
        buf.extend_from_slice(&n.to_le_bytes());
        let mut checksum = fold(n, 0);
        for &(k, v) in pairs {
            buf.extend_from_slice(&k.to_le_bytes());
            buf.extend_from_slice(&v.to_le_bytes());
            checksum = fold(k, checksum);
            checksum = fold(v, checksum);
        }
        buf.extend_from_slice(&checksum.to_le_bytes());
    }

    #[test]
    fn save_load_roundtrip() {
        let idx = sample_index();
        let mut buf = Vec::new();
        save_to(&idx, &mut buf).expect("save");
        let restored = load_from(&mut Cursor::new(&buf), Params::small()).expect("load");
        assert_eq!(restored.len(), idx.len());
        for k in (0..5_000u64).step_by(37) {
            let key = k.wrapping_mul(0x9E3779B97F4A7C15) >> 1;
            assert_eq!(restored.get(key), Some(k));
        }
    }

    #[test]
    fn saves_are_v2() {
        let mut buf = Vec::new();
        save_to(&sample_index(), &mut buf).expect("save");
        assert_eq!(&buf[..8], &MAGIC);
    }

    #[test]
    fn empty_index_roundtrip() {
        let idx = DyTis::with_params(Params::small());
        let mut buf = Vec::new();
        save_to(&idx, &mut buf).expect("save");
        let restored = load_from(&mut Cursor::new(&buf), Params::small()).expect("load");
        assert_eq!(restored.len(), 0);
    }

    #[test]
    fn restore_with_different_params() {
        // The checkpoint is structure-free: any parameterization can load it.
        let idx = sample_index();
        let mut buf = Vec::new();
        save_to(&idx, &mut buf).expect("save");
        let restored = load_from(&mut Cursor::new(&buf), Params::default()).expect("load");
        assert_eq!(restored.len(), idx.len());
    }

    #[test]
    fn legacy_v1_checkpoints_still_load() {
        let pairs: Vec<(u64, u64)> = (0..1_000u64).map(|k| (k * 7, k)).collect();
        let mut buf = Vec::new();
        save_v1(&pairs, &mut buf);
        let restored = load_from(&mut Cursor::new(&buf), Params::small()).expect("v1 load");
        assert_eq!(restored.len(), pairs.len());
        assert_eq!(restored.get(7 * 123), Some(123));
    }

    #[test]
    fn legacy_v1_corruption_still_rejected() {
        let pairs: Vec<(u64, u64)> = (0..100u64).map(|k| (k, k)).collect();
        let mut buf = Vec::new();
        save_v1(&pairs, &mut buf);
        let mid = buf.len() / 2;
        buf[mid] ^= 0x01;
        assert!(load_from(&mut Cursor::new(&buf), Params::small()).is_err());
    }

    /// The reason `DYTIS2` exists: every step of the v1 fold is a bijection
    /// (rotate, XOR with the data word, multiply by an odd constant), so a
    /// flipped value can be cancelled by one compensating edit anywhere
    /// later in the stream. This builds two different pair sets whose v1
    /// streams carry the *same* fold checksum — the v1 loader accepts both,
    /// silently returning different data — and shows CRC64 tells them
    /// apart.
    #[test]
    fn fold_collision_caught_by_crc64() {
        let pairs: Vec<(u64, u64)> = (1..=4u64).map(|k| (k * 100, k * 1_000)).collect();

        // Tamper the first pair's value, then solve for the compensating
        // edit to the *last* pair's value: with acc/acc2 the fold states
        // (original/tampered) just before a word x, equality after that
        // word needs x' = x ^ rotl17(acc) ^ rotl17(acc2).
        let words = |ps: &[(u64, u64)]| -> Vec<u64> {
            let mut w = vec![ps.len() as u64];
            for &(k, v) in ps {
                w.push(k);
                w.push(v);
            }
            w
        };
        let mut tampered = pairs.clone();
        tampered[0].1 ^= 1;
        let (a, mut b) = (words(&pairs), words(&tampered));
        let (mut acc, mut acc2) = (0u64, 0u64);
        for i in 0..a.len() - 1 {
            acc = fold(a[i], acc);
            acc2 = fold(b[i], acc2);
        }
        let last = a.len() - 1;
        b[last] = a[last] ^ acc.rotate_left(17) ^ acc2.rotate_left(17);
        tampered[3].1 = b[last];

        let mut stream_a = Vec::new();
        let mut stream_b = Vec::new();
        save_v1(&pairs, &mut stream_a);
        save_v1(&tampered, &mut stream_b);
        assert_ne!(stream_a, stream_b, "streams must differ");
        assert_eq!(
            &stream_a[stream_a.len() - 8..],
            &stream_b[stream_b.len() - 8..],
            "fold checksums must collide"
        );

        // v1 accepts both — and hands back different data for the second.
        let ra = load_from(&mut Cursor::new(&stream_a), Params::small()).expect("v1 a");
        let rb = load_from(&mut Cursor::new(&stream_b), Params::small()).expect("v1 b");
        assert_eq!(ra.get(100), Some(1_000));
        assert_eq!(rb.get(100), Some(1_001), "silent corruption under v1");

        // CRC64 over the same byte streams (sans magic) tells them apart.
        assert_ne!(
            durability::crc64(&stream_a[8..]),
            durability::crc64(&stream_b[8..]),
            "CRC64 must distinguish the colliding streams"
        );
    }

    #[test]
    fn wal_replay_roundtrip() {
        let mut wal = Wal::new(Vec::new());
        let mut oracle = std::collections::BTreeMap::new();
        for k in 0..2_000u64 {
            wal.log_insert(k * 3, k).expect("log");
            oracle.insert(k * 3, k);
        }
        for k in 0..500u64 {
            wal.log_remove(k * 3).expect("log");
            oracle.remove(&(k * 3));
        }
        let buf = wal.into_inner().expect("flush");
        let mut idx = DyTis::with_params(Params::small());
        let applied = replay(&mut Cursor::new(&buf), &mut idx).expect("replay");
        assert_eq!(applied, 2_500);
        assert_eq!(idx.len(), oracle.len());
        for (&k, &v) in &oracle {
            assert_eq!(idx.get(k), Some(v));
        }
    }

    #[test]
    fn wal_tolerates_torn_tail() {
        let mut wal = Wal::new(Vec::new());
        wal.log_insert(1, 10).expect("log");
        wal.log_insert(2, 20).expect("log");
        let mut buf = wal.into_inner().expect("flush");
        buf.truncate(buf.len() - 5); // Tear the last record.
        let mut idx = DyTis::with_params(Params::small());
        let applied = replay(&mut Cursor::new(&buf), &mut idx).expect("replay");
        assert_eq!(applied, 1);
        assert_eq!(idx.get(1), Some(10));
        assert_eq!(idx.get(2), None);
    }

    #[test]
    fn wal_rejects_unknown_op() {
        let buf = vec![9u8; 17];
        let mut idx = DyTis::with_params(Params::small());
        assert!(replay(&mut Cursor::new(&buf), &mut idx).is_err());
    }

    #[test]
    fn checkpoint_plus_wal_recovery() {
        // The full recovery protocol: checkpoint, more writes into a WAL,
        // crash, restore checkpoint + replay.
        let mut idx = DyTis::with_params(Params::small());
        for k in 0..1_000u64 {
            idx.insert(k, k);
        }
        let mut ckpt = Vec::new();
        save_to(&idx, &mut ckpt).expect("checkpoint");
        let mut wal = Wal::new(Vec::new());
        for k in 1_000..1_500u64 {
            idx.insert(k, k);
            wal.log_insert(k, k).expect("log");
        }
        idx.remove(0);
        wal.log_remove(0).expect("log");
        let log = wal.into_inner().expect("flush");

        let mut recovered = load_from(&mut Cursor::new(&ckpt), Params::small()).expect("restore");
        replay(&mut Cursor::new(&log), &mut recovered).expect("replay");
        assert_eq!(recovered.len(), idx.len());
        assert_eq!(recovered.get(0), None);
        assert_eq!(recovered.get(1_250), Some(1_250));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = Vec::new();
        save_to(&sample_index(), &mut buf).expect("save");
        buf[0] ^= 0xFF;
        let err = load_from(&mut Cursor::new(&buf), Params::small()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncation_rejected() {
        let mut buf = Vec::new();
        save_to(&sample_index(), &mut buf).expect("save");
        buf.truncate(buf.len() - 9);
        assert!(load_from(&mut Cursor::new(&buf), Params::small()).is_err());
    }

    #[test]
    fn corruption_rejected() {
        let mut buf = Vec::new();
        save_to(&sample_index(), &mut buf).expect("save");
        let mid = buf.len() / 2;
        buf[mid] ^= 0x01;
        assert!(load_from(&mut Cursor::new(&buf), Params::small()).is_err());
    }
}
