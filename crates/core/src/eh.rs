//! Second-level Extendible Hashing tables (§3.1–§3.3).
//!
//! Each EH table owns a directory (indexed by the `GD` most-significant bits
//! of the EH sub-key), an arena of segments, and per-segment sibling links
//! used to accelerate scans. Insertion follows Algorithm 1 of the paper:
//! below `L_start` the table behaves as plain Extendible hashing; from
//! `L_start` on, the utilization threshold `U_t` arbitrates between split,
//! remapping, expansion and directory doubling.

use crate::params::Params;
use crate::remap::{mask64, RemapFn};
use crate::segment::{BucketUpsert, RemapOutcome, Segment};
use crate::stats::DytisStats;
use index_traits::{Key, Value};
use std::time::Instant;

/// Index of a segment in the table's arena.
pub type SegId = u32;

/// One Extendible Hashing table of DyTIS's second level.
#[derive(Debug, Clone)]
pub struct EhTable {
    /// Number of key bits this table indexes (`n − R`).
    m_total: u32,
    /// Global depth `GD`; the directory has `2^GD` entries.
    global_depth: u32,
    /// Directory: entry `i` points at the segment holding keys whose top
    /// `GD` bits equal `i`.
    dir: Vec<SegId>,
    /// Segment arena; `None` slots are free.
    segs: Vec<Option<Segment>>,
    /// Sibling pointer per arena slot: the next segment in key order.
    next: Vec<Option<SegId>>,
    /// Free arena slots for reuse.
    free: Vec<SegId>,
    /// Total keys stored in this table.
    num_keys: usize,
    /// Maintenance statistics.
    stats: DytisStats,
    /// Currently active segment-size limit multiplier (`Limit_seg`).
    active_limit_mult: u32,
    /// Whether the adaptive limit decision (§3.3 "Selecting a segment size")
    /// has been made.
    limit_decided: bool,
}

impl EhTable {
    /// Creates an empty table indexing `m_total`-bit sub-keys.
    pub fn new(m_total: u32, params: &Params) -> Self {
        assert!((1..=63).contains(&m_total));
        EhTable {
            m_total,
            global_depth: 0,
            dir: vec![0],
            segs: vec![Some(Segment::new(0))],
            next: vec![None],
            free: Vec::new(),
            num_keys: 0,
            stats: DytisStats::default(),
            active_limit_mult: params.limit_mult,
            limit_decided: false,
        }
    }

    /// Number of keys stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.num_keys
    }

    /// Returns `true` if no keys are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.num_keys == 0
    }

    /// Global depth of the directory.
    #[inline]
    pub fn global_depth(&self) -> u32 {
        self.global_depth
    }

    /// Maintenance statistics accumulated so far.
    #[inline]
    pub fn stats(&self) -> &DytisStats {
        &self.stats
    }

    /// The active segment-size limit multiplier (2 by default; 128 once the
    /// adaptive policy classifies the dataset as expansion-heavy).
    #[inline]
    pub fn active_limit_mult(&self) -> u32 {
        self.active_limit_mult
    }

    /// Directory index of sub-key `sk`.
    #[inline]
    fn dir_index(&self, sk: u64) -> usize {
        (sk >> (self.m_total - self.global_depth)) as usize
    }

    #[inline]
    fn seg(&self, id: SegId) -> &Segment {
        self.segs[id as usize]
            .as_ref()
            // invariant: directory entries only hold live arena slots.
            .expect("dangling segment id")
    }

    #[inline]
    fn seg_mut(&mut self, id: SegId) -> &mut Segment {
        self.segs[id as usize]
            .as_mut()
            // invariant: directory entries only hold live arena slots.
            .expect("dangling segment id")
    }

    fn alloc(&mut self, seg: Segment) -> SegId {
        if let Some(id) = self.free.pop() {
            self.segs[id as usize] = Some(seg);
            self.next[id as usize] = None;
            id
        } else {
            self.segs.push(Some(seg));
            self.next.push(None);
            (self.segs.len() - 1) as SegId
        }
    }

    /// Looks up `key` (with sub-key `sk`).
    pub fn get(&self, sk: u64, key: Key, params: &Params) -> Option<Value> {
        let id = self.dir[self.dir_index(sk)];
        self.seg(id).get(sk, key, self.m_total, params)
    }

    /// Removes `key`, shrinking the segment if it becomes under-utilized.
    pub fn remove(&mut self, sk: u64, key: Key, params: &Params) -> Option<Value> {
        let id = self.dir[self.dir_index(sk)];
        let m_total = self.m_total;
        let seg = self.seg_mut(id);
        let m = seg.key_bits(m_total);
        let k = sk & mask64(m);
        let b = seg.bucket_of(k, m_total);
        let removed = seg.remove_from_bucket(b, key)?;
        self.num_keys -= 1;
        let seg = self.seg(id);
        if seg.total_buckets() > 1 && seg.utilization(params) < params.shrink_threshold {
            let t0 = Instant::now();
            let n = self.seg(id).num_keys as u64;
            if self.seg_mut(id).shrink(m_total, params) {
                self.stats.ops.shrinks += 1;
                self.stats.ops.keys_moved += n;
                let dt = t0.elapsed().as_nanos() as u64;
                self.stats.times.shrink_ns += dt;
                obs::counter!("dytis.shrink").inc();
                obs::histogram!("dytis.shrink_ns").record(dt);
            }
            #[cfg(debug_assertions)]
            self.debug_audit_segment(id, params);
        }
        Some(removed)
    }

    /// Inserts (or updates in place) `key` with sub-key `sk`.
    pub fn insert(&mut self, sk: u64, key: Key, value: Value, params: &Params) {
        let mut guard = 0u32;
        loop {
            guard += 1;
            assert!(guard < 10_000, "insert failed to converge");
            let id = self.dir[self.dir_index(sk)];
            let m_total = self.m_total;
            let ld = self.seg(id).local_depth;
            let m = m_total - ld;
            let k = sk & mask64(m);
            {
                let cap = params.bucket_entries;
                let seg = self.seg_mut(id);
                let b = seg.bucket_of(k, m_total);
                match seg.upsert_in_bucket(b, key, value, cap) {
                    BucketUpsert::Updated => return,
                    BucketUpsert::Inserted => {
                        self.num_keys += 1;
                        return;
                    }
                    BucketUpsert::Full => {}
                }
            }
            // Bucket is full: Algorithm 1.
            self.maybe_decide_limit(params);
            let gd = self.global_depth;
            if ld < params.l_start {
                // Warm-up: plain Extendible hashing behaviour.
                if ld == gd {
                    self.double_directory();
                }
                let hint = self.dir_index(sk);
                self.split(id, hint, params);
                continue;
            }
            let cap_buckets = params.segment_cap(ld, self.active_limit_mult);
            let high_util = self.seg(id).utilization(params) > params.utilization_threshold;
            let hint = self.dir_index(sk);
            if ld < gd {
                // High utilization goes straight to a split; otherwise try
                // remapping first and split only when that fails.
                if high_util || !self.try_remap(id, k, cap_buckets, params) {
                    self.split(id, hint, params);
                }
            } else {
                let ok = if high_util {
                    self.try_expand(id, cap_buckets, params)
                } else {
                    self.try_remap(id, k, cap_buckets, params)
                };
                if !ok {
                    self.double_directory();
                    // Retry: the next iteration sees LD < GD and will split
                    // (or remap) as Algorithm 1 prescribes.
                }
            }
        }
    }

    /// Decides the adaptive segment-size limit once the table has gathered
    /// enough maintenance history (observed at `L' = L_start + 2`, §3.3).
    fn maybe_decide_limit(&mut self, params: &Params) {
        if self.limit_decided || self.global_depth < params.l_start + 2 {
            return;
        }
        self.limit_decided = true;
        let s = &self.stats.ops;
        let window_total = s.splits + s.remaps + s.expansions;
        if window_total > 0
            && s.expansions as f64 / window_total as f64 >= params.expansion_heavy_fraction
        {
            self.active_limit_mult = params.limit_mult_raised;
        }
    }

    fn try_remap(&mut self, id: SegId, k: u64, cap_buckets: usize, params: &Params) -> bool {
        let m_total = self.m_total;
        let t0 = Instant::now();
        let n = self.seg(id).num_keys as u64;
        let outcome = self
            .seg_mut(id)
            .remap_adjust(k, m_total, cap_buckets, params);
        if outcome == RemapOutcome::Failed {
            return false;
        }
        self.stats.ops.remaps += 1;
        self.stats.ops.keys_moved += n;
        let dt = t0.elapsed().as_nanos() as u64;
        self.stats.times.remap_ns += dt;
        obs::counter!("dytis.remap").inc();
        obs::histogram!("dytis.remap_ns").record(dt);
        #[cfg(debug_assertions)]
        self.debug_audit_segment(id, params);
        true
    }

    fn try_expand(&mut self, id: SegId, cap_buckets: usize, params: &Params) -> bool {
        let m_total = self.m_total;
        let t0 = Instant::now();
        let n = self.seg(id).num_keys as u64;
        if !self.seg_mut(id).expand(m_total, cap_buckets, params) {
            return false;
        }
        self.stats.ops.expansions += 1;
        self.stats.ops.keys_moved += n;
        let dt = t0.elapsed().as_nanos() as u64;
        self.stats.times.expansion_ns += dt;
        obs::counter!("dytis.expand").inc();
        obs::histogram!("dytis.expand_ns").record(dt);
        #[cfg(debug_assertions)]
        self.debug_audit_segment(id, params);
        true
    }

    /// Splits segment `id` into two (requires `LD < GD`). `hint_idx` is any
    /// directory index pointing at `id`.
    fn split(&mut self, id: SegId, hint_idx: usize, params: &Params) {
        let t0 = Instant::now();
        let m_total = self.m_total;
        // invariant: directory entries only hold live arena slots.
        let old = self.segs[id as usize].take().expect("dangling segment id");
        debug_assert!(old.local_depth < self.global_depth);
        let n = old.num_keys as u64;
        let (left, right) = old.split(m_total, params);
        let new_ld = left.local_depth;

        // Reuse `id` for the left half so predecessors' sibling pointers and
        // directory entries below the split point stay valid.
        self.segs[id as usize] = Some(left);
        let right_id = self.alloc(right);
        self.next[right_id as usize] = self.next[id as usize];
        self.next[id as usize] = Some(right_id);

        // Redirect the upper half of the directory range that pointed at the
        // old segment.
        let span = 1usize << (self.global_depth - new_ld);
        // First directory entry of the *old* segment's range: clear the low
        // `GD - (LD_new - 1)` bits of the hint index.
        debug_assert_eq!(self.dir[hint_idx], id);
        let base = hint_idx & !(span * 2 - 1);
        for e in &mut self.dir[base + span..base + 2 * span] {
            *e = right_id;
        }
        self.stats.ops.splits += 1;
        self.stats.ops.keys_moved += n;
        let dt = t0.elapsed().as_nanos() as u64;
        self.stats.times.split_ns += dt;
        obs::counter!("dytis.split").inc();
        obs::histogram!("dytis.split_ns").record(dt);
        #[cfg(debug_assertions)]
        {
            self.debug_audit_directory();
            self.debug_audit_segment(id, params);
            self.debug_audit_segment(right_id, params);
        }
    }

    /// Doubles the directory (`GD += 1`), duplicating every entry.
    fn double_directory(&mut self) {
        let t0 = Instant::now();
        let mut dir = Vec::with_capacity(self.dir.len() * 2);
        for &e in &self.dir {
            dir.push(e);
            dir.push(e);
        }
        self.dir = dir;
        self.global_depth += 1;
        self.stats.ops.doublings += 1;
        let dt = t0.elapsed().as_nanos() as u64;
        self.stats.times.doubling_ns += dt;
        obs::counter!("dytis.double").inc();
        obs::histogram!("dytis.double_ns").record(dt);
        #[cfg(debug_assertions)]
        self.debug_audit_directory();
    }

    /// Structural position (segment id, bucket, slot) of the first pair
    /// with key `>= start_key` (sub-key `start_sk`): one directory lookup,
    /// one remap prediction, one branchless lower bound. Because bucket
    /// indices are monotone in the key (§3.2), every pair at or after this
    /// position has a key `>= start_key`, so a scan resumed from such a
    /// position never needs to re-predict.
    pub(crate) fn cursor_position(&self, start_sk: u64, start_key: Key) -> (SegId, usize, usize) {
        let seg_id = self.dir[self.dir_index(start_sk)];
        let seg = self.seg(seg_id);
        let m = seg.key_bits(self.m_total);
        let k = start_sk & mask64(m);
        let b = seg.bucket_of(k, self.m_total);
        (seg_id, b, seg.buckets[b].lower_bound(start_key))
    }

    /// Structural position of the table's very first pair slot.
    pub(crate) fn start_position(&self) -> (SegId, usize, usize) {
        (self.dir[0], 0, 0)
    }

    /// Cache hint for a resume position: pulls the bucket the next
    /// [`EhTable::cursor_walk`] will start from into cache ahead of the
    /// walk's directory work (see `ScanCursor::scan_next`).
    pub(crate) fn prefetch_position(&self, seg_id: SegId, b: usize) {
        if let Some(Some(seg)) = self.segs.get(seg_id as usize) {
            if let Some(bucket) = seg.buckets.get(b) {
                crate::simd::prefetch_slice(bucket.keys());
                crate::simd::prefetch_slice(bucket.vals());
            }
        }
    }

    /// Walks key order structurally from `pos`, bulk-appending pairs until
    /// `out` holds `count` entries. Returns the position to resume from, or
    /// `None` once the table is exhausted.
    pub(crate) fn cursor_walk(
        &self,
        pos: (SegId, usize, usize),
        count: usize,
        out: &mut Vec<(Key, Value)>,
    ) -> Option<(SegId, usize, usize)> {
        let (mut seg_id, mut b, mut slot) = pos;
        loop {
            // Hint the next sibling segment in while this one is walked, so
            // crossing a segment boundary does not stall on its first
            // bucket (the cursor's dominant cache miss on long scans).
            if let Some(n) = self.next[seg_id as usize] {
                if let Some(ns) = self.segs[n as usize].as_ref() {
                    if let Some(first) = ns.buckets.first() {
                        crate::simd::prefetch_slice(first.keys());
                    }
                }
            }
            if let Some((nb, ns)) = self.seg(seg_id).walk_from(b, slot, count, out) {
                return Some((seg_id, nb, ns));
            }
            match self.next[seg_id as usize] {
                Some(n) => (seg_id, b, slot) = (n, 0, 0),
                None => return None,
            }
        }
    }

    /// Scans from the smallest key `>= start_key` (sub-key `start_sk`),
    /// appending up to `count - out.len()` pairs. Returns `true` when the
    /// scan is satisfied (no further tables need visiting).
    pub fn scan(
        &self,
        start_sk: u64,
        start_key: Key,
        count: usize,
        out: &mut Vec<(Key, Value)>,
    ) -> bool {
        if self.num_keys == 0 {
            return out.len() >= count;
        }
        let pos = self.cursor_position(start_sk, start_key);
        let _ = self.cursor_walk(pos, count, out);
        out.len() >= count
    }

    /// Scans the whole table from its first segment (used when a scan spills
    /// over from a previous first-level entry).
    pub fn scan_from_start(&self, count: usize, out: &mut Vec<(Key, Value)>) -> bool {
        if self.num_keys == 0 {
            return out.len() >= count;
        }
        let _ = self.cursor_walk(self.start_position(), count, out);
        out.len() >= count
    }

    /// Builds a table directly from strictly-sorted unique `pairs` (whose
    /// keys must fit `m_total` bits), mirroring ALEX's bulk load: the key
    /// range is halved recursively until each block fits one segment at the
    /// target utilization `U_t`, then every block trains a remapping
    /// function from its key histogram and fills buckets with sorted
    /// appends. No per-insert maintenance (split / remap / expand / double)
    /// runs at all.
    pub fn build_sorted(m_total: u32, pairs: &[(Key, Value)], params: &Params) -> Self {
        let mut table = EhTable::new(m_total, params);
        if pairs.is_empty() {
            return table;
        }
        debug_assert!(
            pairs
                .windows(2)
                .all(|w| (w[0].0 & mask64(m_total)) < (w[1].0 & mask64(m_total))),
            "bulk build requires strictly sorted unique sub-keys"
        );
        // Partition plan: (local_depth, pair range) blocks in key order.
        // Halving an aligned block yields two aligned blocks, so the plan
        // tiles the directory correctly by construction.
        let mut plan: Vec<(u32, usize, usize)> = Vec::new();
        plan_blocks(pairs, 0, pairs.len(), 0, 0, m_total, params, &mut plan);
        let gd = plan.iter().map(|&(ld, _, _)| ld).max().unwrap_or(0);

        table.global_depth = gd;
        table.dir = Vec::with_capacity(1usize << gd);
        table.segs.clear();
        table.next.clear();
        for (i, &(ld, lo, hi)) in plan.iter().enumerate() {
            let block = &pairs[lo..hi];
            // Hint the next block's input in while this one trains+fills.
            if let Some(&(_, nlo, _)) = plan.get(i + 1) {
                crate::simd::prefetch_slice(&pairs[nlo..]);
            }
            let remap = trained_remap(block, ld, m_total, params);
            let seg = Segment::build(ld, remap, block, m_total, params);
            let id = i as SegId;
            let span = 1usize << (gd - ld);
            table.dir.extend(std::iter::repeat_n(id, span));
            table.segs.push(Some(seg));
            table.next.push((i + 1 < plan.len()).then_some(id + 1));
        }
        table.num_keys = pairs.len();
        #[cfg(debug_assertions)]
        table.check_invariants(params);
        table
    }

    /// Iterates over all live segments (for tests and introspection).
    pub fn segments(&self) -> impl Iterator<Item = &Segment> {
        self.segs.iter().filter_map(|s| s.as_ref())
    }

    /// Total linear models (remapping-function pieces) across segments —
    /// the structural quantity the paper's §4.3/§4.4 analysis compares
    /// against ALEX's node counts.
    pub fn model_count(&self) -> usize {
        self.segments().map(|s| s.remap.num_pieces()).sum()
    }

    /// Number of live segments.
    pub fn segment_count(&self) -> usize {
        self.segments().count()
    }

    /// Structural memory in bytes: directory + segment metadata + buckets.
    pub fn memory_bytes(&self) -> usize {
        self.dir.capacity() * std::mem::size_of::<SegId>()
            + self.next.capacity() * std::mem::size_of::<Option<SegId>>()
            + self.segs.capacity() * std::mem::size_of::<Option<Segment>>()
            + self
                .segs
                .iter()
                .flatten()
                .map(Segment::heap_bytes)
                .sum::<usize>()
    }

    /// Validates structural invariants; used by tests and debug assertions.
    ///
    /// # Panics
    ///
    /// Panics if any invariant is violated.
    pub fn check_invariants(&self, params: &Params) {
        let mut report = index_traits::AuditReport::new("EhTable");
        self.audit_into(params, 0, &mut report);
        report.assert_clean();
    }

    /// Structure-only directory audit: entry validity, alignment, span
    /// coverage, sibling links, and free-list consistency. Does not walk
    /// keys, so it is cheap enough for the debug-build hooks fired after
    /// every split and doubling. Returns the segment ids in directory order
    /// when the directory itself is sound enough to walk.
    pub(crate) fn audit_directory_into(
        &self,
        table_idx: usize,
        report: &mut index_traits::AuditReport,
    ) -> Vec<SegId> {
        let gd = self.global_depth;
        report.check(self.dir.len() == 1usize << gd, "dir-size", || {
            (
                format!("table {table_idx}"),
                format!("directory has {} entries at GD {gd}", self.dir.len()),
            )
        });
        let mut chain = Vec::new();
        let mut idx = 0usize;
        while idx < self.dir.len() {
            let id = self.dir[idx];
            let Some(seg) = self.segs.get(id as usize).and_then(Option::as_ref) else {
                report.fail(
                    "dir-dangling",
                    format!("table {table_idx} / dir[{idx}]"),
                    format!("entry points at missing segment {id}"),
                );
                idx += 1;
                continue;
            };
            let ld = seg.local_depth;
            if !report.check(ld <= gd, "local-depth", || {
                (
                    format!("table {table_idx} / seg {id}"),
                    format!("local_depth {ld} exceeds global_depth {gd}"),
                )
            }) {
                idx += 1;
                continue;
            }
            let span = 1usize << (gd - ld);
            report.check(idx.is_multiple_of(span), "dir-alignment", || {
                (
                    format!("table {table_idx} / dir[{idx}]"),
                    format!("segment {id} (span {span}) starts unaligned"),
                )
            });
            let end = (idx + span).min(self.dir.len());
            report.check(
                self.dir[idx..end].iter().all(|&e| e == id),
                "dir-coverage",
                || {
                    (
                        format!("table {table_idx} / dir[{idx}..{end}]"),
                        format!("span of segment {id} mixes directory targets"),
                    )
                },
            );
            chain.push(id);
            idx += span;
        }
        // The sibling chain visits the segments in directory order, then
        // terminates.
        let mut cur = chain.first().copied();
        for &expected in &chain {
            if !report.check(cur == Some(expected), "sibling-chain", || {
                (
                    format!("table {table_idx}"),
                    format!("chain reached {cur:?}, directory order expects segment {expected}"),
                )
            }) {
                break;
            }
            cur = self.next.get(expected as usize).copied().flatten();
        }
        report.check(cur.is_none(), "sibling-chain", || {
            (
                format!("table {table_idx}"),
                format!("chain has trailing segment {cur:?} past the directory"),
            )
        });
        for &f in &self.free {
            report.check(
                self.segs.get(f as usize).is_some_and(Option::is_none),
                "free-list",
                || {
                    (
                        format!("table {table_idx}"),
                        format!("free slot {f} still holds a live segment"),
                    )
                },
            );
        }
        // Every live arena slot must be reachable from the directory.
        for (i, s) in self.segs.iter().enumerate() {
            if s.is_some() {
                report.check(chain.contains(&(i as SegId)), "seg-unreferenced", || {
                    (
                        format!("table {table_idx} / seg {i}"),
                        "live segment not referenced by the directory".into(),
                    )
                });
            }
        }
        chain
    }

    /// Deep audit: the directory checks of [`Self::audit_directory_into`]
    /// plus per-segment remap/bucket invariants, cross-segment key ordering,
    /// per-segment key ranges, and table-level key accounting.
    pub(crate) fn audit_into(
        &self,
        params: &Params,
        table_idx: usize,
        report: &mut index_traits::AuditReport,
    ) {
        let chain = self.audit_directory_into(table_idx, report);
        let mut total = 0usize;
        let mut last_key: Option<Key> = None;
        let mut dir_idx = 0usize;
        for &id in &chain {
            let seg = self.seg(id);
            let loc = format!("table {table_idx} / seg {id}");
            crate::audit::audit_segment(seg, self.m_total, params, &loc, report);
            let ld = seg.local_depth.min(self.global_depth);
            let span = 1usize << (self.global_depth - ld);
            if let Some((first, last)) = crate::audit::segment_key_bounds(seg) {
                // Keys are strictly sorted within a segment (checked above),
                // so range membership of the extremes covers every key.
                let prefix = (dir_idx / span) as u64;
                let shift = self.m_total - ld;
                for key in [first, last] {
                    let sk = key & mask64(self.m_total);
                    report.check(ld == 0 || sk >> shift == prefix, "key-range", || {
                        (
                            loc.clone(),
                            format!("key {key:#x} outside directory prefix {prefix:#x}"),
                        )
                    });
                }
                report.check(
                    last_key.is_none_or(|p| p < first),
                    "table-key-order",
                    || {
                        (
                            loc.clone(),
                            format!(
                                "first key {first:#x} not above previous segment's {last_key:?}"
                            ),
                        )
                    },
                );
                last_key = Some(last);
            }
            total += seg.num_keys;
            dir_idx += span;
        }
        report.check(total == self.num_keys, "table-key-count", || {
            (
                format!("table {table_idx}"),
                format!("segments hold {total} keys, table claims {}", self.num_keys),
            )
        });
    }

    /// Debug-build hook: audits one segment after a contents-changing
    /// maintenance operation (remapping, expansion, shrink).
    ///
    /// # Panics
    ///
    /// Panics if the segment violates an invariant.
    #[cfg(debug_assertions)]
    fn debug_audit_segment(&self, id: SegId, params: &Params) {
        let mut report = index_traits::AuditReport::new("EhTable segment");
        crate::audit::audit_segment(
            self.seg(id),
            self.m_total,
            params,
            &format!("seg {id}"),
            &mut report,
        );
        report.assert_clean();
    }

    /// Debug-build hook: audits the directory structure (no key walk) after
    /// a split or doubling.
    ///
    /// # Panics
    ///
    /// Panics if the directory violates an invariant.
    #[cfg(debug_assertions)]
    fn debug_audit_directory(&self) {
        let mut report = index_traits::AuditReport::new("EhTable directory");
        self.audit_directory_into(0, &mut report);
        report.assert_clean();
    }
}

/// Recursively halves the key block starting at `start` with width
/// `2^(m_total - ld)` (holding `pairs[lo..hi]`) until its keys fit a single
/// segment at utilization `U_t` under the segment-size cap `Limit_seg(LD)`,
/// appending the surviving `(local_depth, lo, hi)` blocks in key order.
/// The per-block budget grows exponentially with `LD`, so dense clusters
/// stop splitting as soon as the cap catches up with them.
#[allow(clippy::too_many_arguments)]
fn plan_blocks(
    pairs: &[(Key, Value)],
    lo: usize,
    hi: usize,
    ld: u32,
    start: u64,
    m_total: u32,
    params: &Params,
    out: &mut Vec<(u32, usize, usize)>,
) {
    let n = hi - lo;
    let cap_keys = params.segment_cap(ld, params.limit_mult) * params.bucket_entries;
    let budget = ((cap_keys as f64) * params.utilization_threshold).floor() as usize;
    if n > budget.max(1) && ld < m_total {
        let half = start + (1u64 << (m_total - ld - 1));
        let mid = lo + pairs[lo..hi].partition_point(|&(k, _)| (k & mask64(m_total)) < half);
        plan_blocks(pairs, lo, mid, ld + 1, start, m_total, params, out);
        plan_blocks(pairs, mid, hi, ld + 1, half, m_total, params, out);
    } else {
        out.push((ld, lo, hi));
    }
}

/// Trains a remapping function for a freshly bulk-built segment from the
/// sorted keys it will hold: an equal-width histogram over up to 64 pieces,
/// each granted the buckets its keys need at utilization `U_t` — a direct
/// piecewise approximation of the block's CDF (§3.2). Skew the histogram
/// cannot express is absorbed by [`Segment::build`]'s overflow refinement.
fn trained_remap(pairs: &[(Key, Value)], ld: u32, m_total: u32, params: &Params) -> RemapFn {
    let m = m_total - ld;
    let per_bucket = params.bucket_entries as f64 * params.utilization_threshold;
    let total = ((pairs.len() as f64) / per_bucket).ceil() as u32;
    if pairs.is_empty() || total <= 1 || m == 0 {
        return RemapFn::identity();
    }
    // Roughly one piece per target bucket, capped at 2^6 pieces and at the
    // key width.
    let piece_bits = m.min(6).min(32 - total.leading_zeros());
    let pieces = 1usize << piece_bits;
    let w = m - piece_bits;
    let maskm = mask64(m);
    let mut counts = vec![0u32; pieces];
    let mut lo = 0usize;
    for (i, c) in counts.iter_mut().enumerate() {
        let end = ((i as u64) + 1) << w;
        let hi = lo + pairs[lo..].partition_point(|&(k, _)| (k & maskm) < end);
        *c = (((hi - lo) as f64) / per_bucket).ceil() as u32;
        lo = hi;
    }
    if counts.iter().all(|&c| c == 0) {
        counts[0] = 1; // from_counts needs at least one bucket.
    }
    RemapFn::from_counts(counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> Params {
        Params {
            bucket_entries: 8,
            l_start: 2,
            ..Params::default()
        }
    }

    const M: u32 = 16;

    #[test]
    fn insert_get_small() {
        let p = params();
        let mut t = EhTable::new(M, &p);
        for k in 0..100u64 {
            t.insert(k * 7 % (1 << M), k * 7 % (1 << M), k, &p);
        }
        t.check_invariants(&p);
        for k in 0..100u64 {
            let key = k * 7 % (1 << M);
            assert_eq!(t.get(key, key, &p), Some(k), "key {key}");
        }
        assert_eq!(t.get(3, 3, &p), None);
    }

    #[test]
    fn insert_many_sequential_and_lookup() {
        let p = params();
        let mut t = EhTable::new(M, &p);
        for k in 0..4000u64 {
            t.insert(k, k, k + 1, &p);
        }
        t.check_invariants(&p);
        assert_eq!(t.len(), 4000);
        for k in (0..4000u64).step_by(37) {
            assert_eq!(t.get(k, k, &p), Some(k + 1));
        }
    }

    #[test]
    fn insert_skewed_cluster_triggers_remap() {
        let p = params();
        let mut t = EhTable::new(M, &p);
        // Dense cluster in a narrow range plus disjoint sparse outliers.
        for k in 0..2000u64 {
            t.insert(1000 + k, 1000 + k, k, &p);
        }
        for k in 0..50u64 {
            let key = 50_000 + k * 300;
            t.insert(key, key, k, &p);
        }
        t.check_invariants(&p);
        assert!(t.stats().ops.total_ops() > 0);
        for k in 0..2000u64 {
            assert_eq!(t.get(1000 + k, 1000 + k, &p), Some(k));
        }
    }

    #[test]
    fn update_in_place_does_not_grow() {
        let p = params();
        let mut t = EhTable::new(M, &p);
        for k in 0..500u64 {
            t.insert(k, k, 0, &p);
        }
        let len = t.len();
        for k in 0..500u64 {
            t.insert(k, k, 9, &p);
        }
        assert_eq!(t.len(), len);
        assert_eq!(t.get(123, 123, &p), Some(9));
    }

    #[test]
    fn remove_and_shrink() {
        let p = params();
        let mut t = EhTable::new(M, &p);
        for k in 0..2000u64 {
            t.insert(k, k, k, &p);
        }
        for k in 0..1900u64 {
            assert_eq!(t.remove(k, k, &p), Some(k), "key {k}");
        }
        t.check_invariants(&p);
        assert_eq!(t.len(), 100);
        for k in 1900..2000u64 {
            assert_eq!(t.get(k, k, &p), Some(k));
        }
        assert_eq!(t.remove(5, 5, &p), None);
        assert!(
            t.stats().ops.shrinks > 0,
            "delete-heavy run must count at least one shrink"
        );
    }

    #[test]
    fn scan_returns_sorted_run() {
        let p = params();
        let mut t = EhTable::new(M, &p);
        let keys: Vec<u64> = (0..3000u64).map(|k| (k * 2654435761) % (1 << M)).collect();
        let mut sorted: Vec<u64> = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        for &k in &keys {
            t.insert(k, k, k, &p);
        }
        let mut out = Vec::new();
        t.scan(100, 100, 64, &mut out);
        let expect: Vec<u64> = sorted
            .iter()
            .copied()
            .filter(|&k| k >= 100)
            .take(64)
            .collect();
        let got: Vec<u64> = out.iter().map(|&(k, _)| k).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn scan_spills_across_segments() {
        let p = params();
        let mut t = EhTable::new(M, &p);
        for k in 0..5000u64 {
            t.insert(k, k, k, &p);
        }
        let mut out = Vec::new();
        assert!(t.scan(4000, 4000, 500, &mut out));
        assert_eq!(out.len(), 500);
        assert_eq!(out[0].0, 4000);
        assert_eq!(out[499].0, 4499);
    }

    #[test]
    fn scan_past_end_is_unsatisfied() {
        let p = params();
        let mut t = EhTable::new(M, &p);
        for k in 0..100u64 {
            t.insert(k, k, k, &p);
        }
        let mut out = Vec::new();
        assert!(!t.scan(50, 50, 200, &mut out));
        assert_eq!(out.len(), 50);
    }

    #[test]
    fn stats_accumulate() {
        let p = params();
        let mut t = EhTable::new(M, &p);
        for k in 0..5000u64 {
            t.insert(k, k, k, &p);
        }
        let s = t.stats();
        assert!(s.ops.splits > 0);
        assert!(s.ops.doublings > 0);
        assert!(s.ops.keys_moved > 0);
    }

    #[test]
    fn audit_detects_corrupted_table_key_count() {
        let p = params();
        let mut t = EhTable::new(M, &p);
        for k in 0..500u64 {
            t.insert(k, k, k, &p);
        }
        t.check_invariants(&p);
        t.num_keys += 1;
        let mut report = index_traits::AuditReport::new("EhTable");
        t.audit_into(&p, 0, &mut report);
        assert!(report
            .violations
            .iter()
            .any(|v| v.invariant == "table-key-count"));
    }

    #[test]
    fn audit_detects_broken_sibling_chain() {
        let p = params();
        let mut t = EhTable::new(M, &p);
        for k in 0..4000u64 {
            t.insert(k, k, k, &p);
        }
        assert!(t.segment_count() > 1, "need several segments");
        let first = t.dir[0];
        t.next[first as usize] = None;
        let mut report = index_traits::AuditReport::new("EhTable");
        t.audit_directory_into(0, &mut report);
        assert!(report
            .violations
            .iter()
            .any(|v| v.invariant == "sibling-chain"));
    }

    #[test]
    fn audit_detects_dangling_directory_entry() {
        let p = params();
        let mut t = EhTable::new(M, &p);
        for k in 0..4000u64 {
            t.insert(k, k, k, &p);
        }
        let victim = t.dir[0];
        t.segs[victim as usize] = None;
        let mut report = index_traits::AuditReport::new("EhTable");
        t.audit_directory_into(0, &mut report);
        assert!(report
            .violations
            .iter()
            .any(|v| v.invariant == "dir-dangling"));
    }

    #[test]
    fn audit_detects_misplaced_key() {
        let p = params();
        let mut t = EhTable::new(M, &p);
        for k in 0..4000u64 {
            t.insert(k, k, k, &p);
        }
        // Plant a key in the last bucket of a multi-bucket segment that the
        // remapping function maps to an earlier bucket; fix the key count so
        // only ordering/placement trips.
        let id = t
            .segments()
            .position(|s| s.total_buckets() > 1)
            .expect("grown table has a multi-bucket segment");
        let seg = t.segs.iter_mut().flatten().nth(id).expect("segment exists");
        let last = seg.buckets.len() - 1;
        let _ = seg.buckets[last].insert(0, 0);
        seg.num_keys += 1;
        t.num_keys += 1;
        let mut report = index_traits::AuditReport::new("EhTable");
        t.audit_into(&p, 0, &mut report);
        assert!(!report.is_clean());
        assert!(report
            .violations
            .iter()
            .any(|v| v.invariant == "key-placement" || v.invariant == "key-order"));
    }

    #[test]
    fn build_sorted_equals_insert_loop() {
        let p = params();
        let pairs: Vec<(u64, u64)> = (0..5000u64).map(|k| (k * 3 + 1, k)).collect();
        let t = EhTable::build_sorted(M, &pairs, &p);
        t.check_invariants(&p);
        assert_eq!(t.len(), pairs.len());
        for &(k, v) in pairs.iter().step_by(17) {
            assert_eq!(t.get(k, k, &p), Some(v), "key {k}");
        }
        let mut out = Vec::new();
        t.scan_from_start(pairs.len(), &mut out);
        assert_eq!(out, pairs);
    }

    #[test]
    fn build_sorted_clustered_keys() {
        let p = params();
        // Two dense clusters at opposite ends of the key space: the plan
        // must stop halving once the depth-scaled budget covers a cluster.
        let mut pairs: Vec<(u64, u64)> = (0..2000u64).map(|k| (k, k)).collect();
        pairs.extend((0..2000u64).map(|k| ((1 << M) - 2000 + k, k)));
        let t = EhTable::build_sorted(M, &pairs, &p);
        t.check_invariants(&p);
        assert_eq!(t.len(), pairs.len());
        let mut out = Vec::new();
        t.scan_from_start(pairs.len(), &mut out);
        assert_eq!(out, pairs);
    }

    #[test]
    fn build_sorted_empty_and_single() {
        let p = params();
        let t = EhTable::build_sorted(M, &[], &p);
        t.check_invariants(&p);
        assert!(t.is_empty());
        let t = EhTable::build_sorted(M, &[(42, 7)], &p);
        t.check_invariants(&p);
        assert_eq!(t.get(42, 42, &p), Some(7));
    }

    #[test]
    fn cursor_walk_resumes_across_segments() {
        let p = params();
        let mut t = EhTable::new(M, &p);
        for k in 0..5000u64 {
            t.insert(k, k, k, &p);
        }
        assert!(t.segment_count() > 1, "need several segments");
        // Stepped resume must concatenate to exactly one full pass.
        let mut stepped = Vec::new();
        let mut pos = Some(t.start_position());
        while let Some(pp) = pos {
            let target = stepped.len() + 97;
            pos = t.cursor_walk(pp, target, &mut stepped);
        }
        let mut whole = Vec::new();
        t.scan_from_start(5000, &mut whole);
        assert_eq!(stepped, whole);
        assert_eq!(stepped.len(), 5000);
    }

    #[test]
    fn directory_dense_uniform_uses_expansion() {
        // Uniform keys at LD == GD should trigger expansions once past
        // L_start, and the adaptive limit may rise.
        let p = params();
        let mut t = EhTable::new(M, &p);
        for k in 0..(1u64 << 13) {
            t.insert(k << 3, k << 3, k, &p);
        }
        t.check_invariants(&p);
        assert!(t.stats().ops.expansions > 0);
    }
}
