//! Common traits shared by every index structure in the DyTIS reproduction.
//!
//! The paper (§4) compares DyTIS against the STX B+-tree, ALEX, XIndex, and
//! hash baselines under an identical workload harness. These traits are the
//! contract the harness programs against: 64-bit keys and 64-bit values (the
//! paper configures both to 8 bytes, §4.2), point operations plus ordered
//! scans.

pub mod audit;

pub use audit::{AuditReport, Auditable, Violation};

/// Key type used throughout the reproduction (8-byte integer keys, §4.2).
pub type Key = u64;

/// Value type (8-byte values, or a pointer-sized handle to a larger record).
pub type Value = u64;

/// A single-threaded ordered key-value index.
///
/// All five indexes of the paper's evaluation implement this trait. `insert`
/// performs an *upsert*: inserting an existing key updates its value in place
/// (the paper modified ALEX and the B+-tree to do the same, §4.1).
pub trait KvIndex {
    /// Inserts `key` with `value`, updating in place if `key` already exists.
    fn insert(&mut self, key: Key, value: Value);

    /// Returns the value associated with `key`, or `None` if absent.
    fn get(&self, key: Key) -> Option<Value>;

    /// Updates `key` in place. Returns `false` if `key` does not exist.
    fn update(&mut self, key: Key, value: Value) -> bool {
        if self.get(key).is_some() {
            self.insert(key, value);
            true
        } else {
            false
        }
    }

    /// Removes `key`, returning its value if it was present.
    fn remove(&mut self, key: Key) -> Option<Value>;

    /// Reads up to `count` key-value pairs in ascending key order, starting
    /// from the smallest key `>= start`, appending them to `out`.
    ///
    /// This is the paper's scan operation (§3.3): a starting key and a scan
    /// key range `c`.
    fn scan(&self, start: Key, count: usize, out: &mut Vec<(Key, Value)>);

    /// Number of keys currently stored.
    fn len(&self) -> usize;

    /// Returns `true` if the index holds no keys.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Short human-readable name used in benchmark tables.
    fn name(&self) -> &'static str;

    /// Structural memory footprint in bytes (used by the §4.3 memory-usage
    /// analysis in place of the paper's `dstat` max-RSS measurement).
    fn memory_bytes(&self) -> usize;
}

/// A thread-safe ordered key-value index (used by the §4.5 concurrency
/// evaluation, Figure 12).
///
/// All methods take `&self`; implementations synchronize internally (DyTIS
/// and XIndex both use two-level reader/writer locking).
pub trait ConcurrentKvIndex: Send + Sync {
    /// Inserts `key` with `value`, updating in place if present.
    fn insert(&self, key: Key, value: Value);

    /// Returns the value associated with `key`, or `None` if absent.
    fn get(&self, key: Key) -> Option<Value>;

    /// Removes `key`, returning its value if it was present.
    fn remove(&self, key: Key) -> Option<Value>;

    /// Ordered scan as in [`KvIndex::scan`].
    fn scan(&self, start: Key, count: usize, out: &mut Vec<(Key, Value)>);

    /// Number of keys currently stored.
    fn len(&self) -> usize;

    /// Returns `true` if the index holds no keys.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Short human-readable name used in benchmark tables.
    fn name(&self) -> &'static str;
}

/// Indexes that can be built from a sorted key array (the "bulk loading" the
/// learned-index baselines require, §4.1; DyTIS deliberately does *not* need
/// this, but implements it for completeness).
pub trait BulkLoad: Sized {
    /// Builds an index from `pairs`, which must be sorted by key and free of
    /// duplicate keys.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `pairs` is unsorted or contains
    /// duplicates.
    fn bulk_load(pairs: &[(Key, Value)]) -> Self;
}

/// Statistics describing index-structure maintenance work, used by the §4.3
/// insertion-breakdown analysis.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MaintenanceStats {
    /// Number of segment/node splits performed.
    pub splits: u64,
    /// Number of segment/node expansions performed.
    pub expansions: u64,
    /// Number of remapping (model readjustment / retraining) operations.
    pub remaps: u64,
    /// Number of directory doublings (or tree-depth increases).
    pub doublings: u64,
    /// Number of segment shrinks (delete-driven compactions, DyTIS §3.6).
    pub shrinks: u64,
    /// Keys copied while rebuilding structures (memory-copy overhead proxy).
    pub keys_moved: u64,
}

impl MaintenanceStats {
    /// Total number of structure-changing operations.
    pub fn total_ops(&self) -> u64 {
        self.splits + self.expansions + self.remaps + self.doublings + self.shrinks
    }

    /// Per-field difference against an earlier snapshot (`self - earlier`),
    /// saturating at zero so monotonic counters never wrap.
    pub fn delta_since(&self, earlier: &MaintenanceStats) -> MaintenanceStats {
        MaintenanceStats {
            splits: self.splits.saturating_sub(earlier.splits),
            expansions: self.expansions.saturating_sub(earlier.expansions),
            remaps: self.remaps.saturating_sub(earlier.remaps),
            doublings: self.doublings.saturating_sub(earlier.doublings),
            shrinks: self.shrinks.saturating_sub(earlier.shrinks),
            keys_moved: self.keys_moved.saturating_sub(earlier.keys_moved),
        }
    }

    /// Adds another counter set into this one (used when pooling shards).
    pub fn merge(&mut self, other: &MaintenanceStats) {
        self.splits += other.splits;
        self.expansions += other.expansions;
        self.remaps += other.remaps;
        self.doublings += other.doublings;
        self.shrinks += other.shrinks;
        self.keys_moved += other.keys_moved;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    /// A trivial reference implementation to exercise the trait defaults.
    #[derive(Default)]
    struct Oracle(BTreeMap<Key, Value>);

    impl KvIndex for Oracle {
        fn insert(&mut self, key: Key, value: Value) {
            self.0.insert(key, value);
        }
        fn get(&self, key: Key) -> Option<Value> {
            self.0.get(&key).copied()
        }
        fn remove(&mut self, key: Key) -> Option<Value> {
            self.0.remove(&key)
        }
        fn scan(&self, start: Key, count: usize, out: &mut Vec<(Key, Value)>) {
            out.extend(self.0.range(start..).take(count).map(|(k, v)| (*k, *v)));
        }
        fn len(&self) -> usize {
            self.0.len()
        }
        fn name(&self) -> &'static str {
            "oracle"
        }
        fn memory_bytes(&self) -> usize {
            self.0.len() * 16
        }
    }

    #[test]
    fn default_update_hits_existing_key() {
        let mut o = Oracle::default();
        o.insert(1, 10);
        assert!(o.update(1, 20));
        assert_eq!(o.get(1), Some(20));
    }

    #[test]
    fn default_update_misses_absent_key() {
        let mut o = Oracle::default();
        assert!(!o.update(7, 1));
        assert_eq!(o.get(7), None);
    }

    #[test]
    fn is_empty_tracks_len() {
        let mut o = Oracle::default();
        assert!(o.is_empty());
        o.insert(3, 3);
        assert!(!o.is_empty());
    }

    #[test]
    fn maintenance_stats_total() {
        let s = MaintenanceStats {
            splits: 1,
            expansions: 2,
            remaps: 3,
            doublings: 4,
            shrinks: 5,
            keys_moved: 100,
        };
        assert_eq!(s.total_ops(), 15);
    }

    #[test]
    fn maintenance_stats_delta_and_merge() {
        let early = MaintenanceStats {
            splits: 1,
            remaps: 2,
            ..Default::default()
        };
        let late = MaintenanceStats {
            splits: 4,
            remaps: 2,
            shrinks: 3,
            ..Default::default()
        };
        let d = late.delta_since(&early);
        assert_eq!(d.splits, 3);
        assert_eq!(d.remaps, 0);
        assert_eq!(d.shrinks, 3);
        // Saturating: a reset counter never underflows.
        assert_eq!(early.delta_since(&late).splits, 0);
        let mut pooled = early;
        pooled.merge(&late);
        assert_eq!(pooled.splits, 5);
        assert_eq!(pooled.shrinks, 3);
        assert_eq!(pooled.total_ops(), 5 + 4 + 3);
    }
}
