//! Structural invariant auditing.
//!
//! Every index in the workspace maintains a web of invariants — directory
//! alignment, sorted buckets, monotone remap functions, key-count
//! accounting — that no single operation checks end-to-end. [`Auditable`]
//! is the workspace-wide contract for deep self-inspection: `audit()` walks
//! the entire structure and reports violations as **structured data** rather
//! than panicking, so callers (tests, debug hooks, operational tooling) can
//! decide whether a violation is fatal, log-worthy, or expected mid-repair.
//!
//! Audits are read-only and O(n); they are meant for tests, the
//! `#[cfg(debug_assertions)]` hooks fired after structure-changing
//! operations, and offline inspection — not for hot paths.

use std::fmt;

/// One detected invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable short identifier of the invariant, e.g. `"bucket-sorted"` or
    /// `"dir-alignment"`. Tests match on this.
    pub invariant: &'static str,
    /// Where in the structure the violation was found, e.g.
    /// `"table 3 / seg 7 / bucket 2"`.
    pub location: String,
    /// Human-readable description of the observed inconsistency.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.invariant, self.location, self.detail)
    }
}

/// Upper bound on violations kept verbatim; beyond this only the count
/// grows. A systematically corrupted structure can otherwise produce one
/// violation per key.
const MAX_RECORDED: usize = 256;

/// Outcome of one [`Auditable::audit`] pass.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// Name of the audited structure (matches `KvIndex::name` where both
    /// exist).
    pub structure: &'static str,
    /// Number of individual invariant checks evaluated. A report claiming
    /// cleanliness with zero checks is vacuous; tests assert this is > 0.
    pub checks: usize,
    /// Recorded violations, capped at an internal limit.
    pub violations: Vec<Violation>,
    /// Total violations detected, including ones dropped past the cap.
    pub total_violations: usize,
}

impl AuditReport {
    /// Creates an empty report for `structure`.
    pub fn new(structure: &'static str) -> Self {
        AuditReport {
            structure,
            ..AuditReport::default()
        }
    }

    /// Returns `true` when no violations were detected.
    pub fn is_clean(&self) -> bool {
        self.total_violations == 0
    }

    /// Records one evaluated check; when `ok` is false, `ctx` supplies the
    /// `(location, detail)` pair for the violation. `ctx` is lazy so passing
    /// audits do not allocate. Returns `ok` for chaining.
    pub fn check(
        &mut self,
        ok: bool,
        invariant: &'static str,
        ctx: impl FnOnce() -> (String, String),
    ) -> bool {
        self.checks += 1;
        if !ok {
            let (location, detail) = ctx();
            self.record(Violation {
                invariant,
                location,
                detail,
            });
        }
        ok
    }

    /// Records an unconditional violation (counts as one failed check).
    pub fn fail(&mut self, invariant: &'static str, location: String, detail: String) {
        self.checks += 1;
        self.record(Violation {
            invariant,
            location,
            detail,
        });
    }

    fn record(&mut self, v: Violation) {
        self.total_violations += 1;
        if self.violations.len() < MAX_RECORDED {
            self.violations.push(v);
        }
    }

    /// Folds `other` into `self` (used by composite structures that audit
    /// sub-components).
    pub fn merge(&mut self, other: AuditReport) {
        self.checks += other.checks;
        self.total_violations += other.total_violations;
        for v in other.violations {
            if self.violations.len() >= MAX_RECORDED {
                break;
            }
            self.violations.push(v);
        }
    }

    /// Panics with a formatted listing unless the report is clean. Used by
    /// the debug-build audit hooks and by tests.
    ///
    /// # Panics
    ///
    /// When at least one violation was recorded.
    pub fn assert_clean(&self) {
        assert!(
            self.is_clean(),
            "structural audit of `{}` failed:\n{}",
            self.structure,
            self
        );
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "audit of `{}`: {} checks, {} violation(s)",
            self.structure, self.checks, self.total_violations
        )?;
        for v in &self.violations {
            writeln!(f, "  {v}")?;
        }
        let dropped = self.total_violations.saturating_sub(self.violations.len());
        if dropped > 0 {
            writeln!(f, "  ... and {dropped} more (suppressed)")?;
        }
        Ok(())
    }
}

/// Structures that can deep-check their own invariants.
///
/// Implementations walk the complete structure (every directory entry,
/// segment, node, and bucket) and report violations instead of panicking.
/// Concurrent implementations take their internal locks in the documented
/// order (first-level table → directory → segment → bucket; see DESIGN.md)
/// and must therefore not be called while the calling thread already holds
/// one of those locks.
pub trait Auditable {
    /// Walks the structure and reports every detected invariant violation.
    fn audit(&self) -> AuditReport;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_report_asserts_clean() {
        let mut r = AuditReport::new("x");
        assert!(r.check(true, "inv", || unreachable!("lazy ctx must not run")));
        assert!(r.is_clean());
        assert_eq!(r.checks, 1);
        r.assert_clean();
    }

    #[test]
    fn failed_check_records_violation() {
        let mut r = AuditReport::new("x");
        r.check(false, "key-count", || {
            ("table 0".into(), "expected 3, found 2".into())
        });
        assert!(!r.is_clean());
        assert_eq!(r.total_violations, 1);
        assert_eq!(r.violations[0].invariant, "key-count");
        assert!(r.violations[0].detail.contains("expected 3"));
    }

    #[test]
    #[should_panic(expected = "structural audit of `x` failed")]
    fn assert_clean_panics_on_violation() {
        let mut r = AuditReport::new("x");
        r.fail("inv", "loc".into(), "broken".into());
        r.assert_clean();
    }

    #[test]
    fn violations_are_capped_but_counted() {
        let mut r = AuditReport::new("x");
        for i in 0..1000 {
            r.fail("inv", format!("loc {i}"), "broken".into());
        }
        assert_eq!(r.total_violations, 1000);
        assert!(r.violations.len() <= 256);
        let shown = format!("{r}");
        assert!(shown.contains("more (suppressed)"));
    }

    #[test]
    fn merge_accumulates_checks_and_violations() {
        let mut a = AuditReport::new("a");
        a.check(true, "inv", || unreachable!());
        let mut b = AuditReport::new("b");
        b.fail("inv2", "loc".into(), "bad".into());
        a.merge(b);
        assert_eq!(a.checks, 2);
        assert_eq!(a.total_violations, 1);
        assert_eq!(a.violations[0].invariant, "inv2");
    }
}
