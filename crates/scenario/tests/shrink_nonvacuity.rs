//! Non-vacuity regression for the shrink counter: the delete-heavy
//! built-in scenario must actually fire segment shrinks (PR-era bug: the
//! shrink path ran but was never counted through `maintenance_stats()`,
//! so a drift harness asserting on it would have silently passed against
//! a structure that never shrank — or, worse, one where shrink was broken
//! entirely).
//!
//! The insert-only control proves the counter is *specific*: a growing
//! run must report zero shrinks.

use dytis::{DyTis, Params};
use scenario::{builtin, compile, run, DytisTarget, RunOptions};

const SCALE: usize = if cfg!(debug_assertions) {
    4_000
} else {
    20_000
};

#[test]
fn delete_heavy_scenario_fires_the_shrink_counter() {
    let compiled = compile(&builtin::delete_heavy_shrink(SCALE));
    let mut idx = DyTis::with_params(Params::small());
    let mut target = DytisTarget { idx: &mut idx };
    let tl = run(&mut target, &compiled, &RunOptions::default());

    assert!(
        tl.total.shrinks > 0,
        "delete-heavy drift fired no shrinks — counter unwired or shrink dead: {:?}",
        tl.total
    );
    // Shrinks move keys; the keys_moved aggregate must reflect that.
    assert!(
        tl.total.keys_moved > 0,
        "shrinks fired but moved no keys: {:?}",
        tl.total
    );
    // The shrinks happen in the drain phase, not the fill phase.
    let fill = tl.phases.iter().find(|p| p.name == "fill").expect("fill");
    let drain = tl.phases.iter().find(|p| p.name == "drain").expect("drain");
    assert_eq!(fill.delta.shrinks, 0, "fill phase shrank: {:?}", fill.delta);
    assert!(
        drain.delta.shrinks > 0,
        "drain phase shrank nothing: {:?}",
        drain.delta
    );
}

#[test]
fn insert_only_control_reports_zero_shrinks() {
    let compiled = compile(&builtin::stationary_control(SCALE));
    let mut idx = DyTis::with_params(Params::small());
    let mut target = DytisTarget { idx: &mut idx };
    let tl = run(&mut target, &compiled, &RunOptions::default());

    assert_eq!(
        tl.total.shrinks, 0,
        "no deletes in the stream, yet shrinks were counted: {:?}",
        tl.total
    );
    // And the structure did real maintenance work otherwise (the control
    // is not vacuous either).
    assert!(
        tl.total.total_ops() > 0,
        "control did nothing: {:?}",
        tl.total
    );
}
