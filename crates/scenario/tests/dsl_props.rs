//! Property-based tests for the scenario DSL and its compiler: the text
//! form must roundtrip losslessly, ramp interpolation must stay within its
//! two endpoint distributions, and compiled op streams must honor the
//! declared op mix within tolerance.
//!
//! Gated behind the `proptest` feature (`cargo test -p scenario --features
//! proptest`) so the default offline test run stays lean.
#![cfg(feature = "proptest")]

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use scenario::{
    compile, ramp_weight, sample_ramped, Event, OpMix, Phase, RampSource, Scenario, ScenarioOp,
};
use ycsb::{fnv_hash, KeyDist, KeySampler};

fn arb_dist() -> impl Strategy<Value = KeyDist> {
    prop_oneof![
        Just(KeyDist::Uniform),
        Just(KeyDist::Mm),
        Just(KeyDist::MmFixed),
        Just(KeyDist::Tx),
        (1u32..1_000).prop_map(|m| KeyDist::Zipf {
            theta: f64::from(m) / 1_000.0,
        }),
        (1u32..64).prop_map(|spots| KeyDist::Hot { spots }),
    ]
}

/// Five weights, at least one non-zero (the shim has no filter combinator,
/// so a zero-total draw is nudged instead of rejected).
fn arb_mix() -> impl Strategy<Value = OpMix> {
    ((0u32..100, 0u32..100, 0u32..100), (0u32..100, 0u32..100)).prop_map(
        |((insert, read, update), (scan, delete))| {
            let mut mix = OpMix {
                insert,
                read,
                update,
                scan,
                delete,
            };
            if mix.total() == 0 {
                mix.read = 1;
            }
            mix
        },
    )
}

/// Raw phase ingredients (named at scenario-assembly time).
fn arb_phase_parts() -> impl Strategy<Value = (KeyDist, OpMix, usize, bool)> {
    ((arb_dist(), arb_mix()), (1usize..5_000, any::<bool>()))
        .prop_map(|((dist, mix), (ops, full_ramp))| (dist, mix, ops, full_ramp))
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (
        any::<u64>(),
        proptest::collection::vec(arb_phase_parts(), 1..4),
        (1u32..100, 1u32..500, 1u32..16),
    )
        .prop_map(|(seed, parts, (at_pct, burst, keys))| {
            let phases: Vec<Phase> = parts
                .into_iter()
                .enumerate()
                .map(|(i, (dist, mix, ops, full_ramp))| Phase {
                    name: format!("p{i}"),
                    dist,
                    mix,
                    ops,
                    ramp: if full_ramp { ops / 2 } else { 0 },
                })
                .collect();
            let total: usize = phases.iter().map(|p| p.ops).sum();
            let at = (total - 1) * at_pct as usize / 100;
            let sc = Scenario {
                name: "prop-scenario".to_string(),
                seed,
                phases,
                events: vec![
                    Event::HotKeyStorm {
                        at,
                        ops: burst as usize,
                        keys: keys as usize,
                    },
                    Event::BulkReload {
                        at,
                        n: burst as usize,
                    },
                ],
            };
            sc.validate().expect("generated scenario must validate");
            sc
        })
}

/// Enumerates the exact support of a `Hot` distribution (mirrors the
/// sampler's base construction, which `hot_uses_exactly_n_spots` pins).
fn hot_support(spots: u32, seed: u64) -> std::collections::HashSet<u64> {
    (0..u64::from(spots))
        .map(|i| fnv_hash(seed ^ i) >> 1)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// parse(to_text(sc)) == sc for arbitrary valid scenarios.
    #[test]
    fn dsl_roundtrips(sc in arb_scenario()) {
        let text = sc.to_text();
        let parsed = Scenario::parse(&text)
            .map_err(|e| TestCaseError::fail(format!("{e}\n{text}")))?;
        prop_assert_eq!(parsed, sc);
    }

    /// Ramp weights are a monotone walk from ~0 to ~1 for any ramp length.
    #[test]
    fn ramp_weights_monotone(ramp in 1usize..10_000) {
        let mut prev = 0.0;
        for i in 0..ramp {
            let w = ramp_weight(i, ramp);
            prop_assert!((0.0..=1.0).contains(&w));
            prop_assert!(w >= prev);
            prev = w;
        }
        prop_assert!(ramp == 1 || ramp_weight(ramp - 1, ramp) > ramp_weight(0, ramp));
    }

    /// Interpolation never leaves its endpoints: with two `Hot`
    /// distributions (the only ones with enumerable support), every ramped
    /// draw is in the union of the supports, and the provenance tag agrees
    /// with which support the key came from.
    #[test]
    fn ramp_stays_within_endpoint_distributions(
        seeds in (any::<u64>(), any::<u64>()),
        spots in (1u32..32, 1u32..32),
        w_milli in 0u32..=1_000,
    ) {
        let (seed_a, seed_b) = seeds;
        let (spots_a, spots_b) = spots;
        let mut prev = KeySampler::new(KeyDist::Hot { spots: spots_a }, seed_a);
        let mut cur = KeySampler::new(KeyDist::Hot { spots: spots_b }, seed_b);
        let sup_a = hot_support(spots_a, seed_a);
        let sup_b = hot_support(spots_b, seed_b);
        let w = f64::from(w_milli) / 1_000.0;
        let mut rng = StdRng::seed_from_u64(seed_a ^ seed_b);
        for _ in 0..200 {
            let (k, src) = sample_ramped(&mut prev, &mut cur, w, &mut rng);
            prop_assert!(
                sup_a.contains(&k) || sup_b.contains(&k),
                "ramped key {k} outside both endpoint supports"
            );
            match src {
                RampSource::Prev => prop_assert!(sup_a.contains(&k)),
                RampSource::Cur => prop_assert!(sup_b.contains(&k)),
            }
        }
    }

    /// Degenerate weights pin the source: w=0 only draws the previous
    /// distribution, w=1 only the current one.
    #[test]
    fn ramp_extremes_pin_the_source(seed in any::<u64>()) {
        let mut prev = KeySampler::new(KeyDist::Uniform, seed);
        let mut cur = KeySampler::new(KeyDist::Tx, seed);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..100 {
            let (_, src) = sample_ramped(&mut prev, &mut cur, 0.0, &mut rng);
            prop_assert_eq!(src, RampSource::Prev);
            let (_, src) = sample_ramped(&mut prev, &mut cur, 1.0, &mut rng);
            prop_assert_eq!(src, RampSource::Cur);
        }
    }

    /// Compiled streams honor the declared op mix within tolerance. The
    /// serve phase follows a large insert-only warmup so the live set is
    /// never empty (the live-empty insert fallback would skew the mix);
    /// the generator keeps insert >= delete so the set cannot drain.
    #[test]
    fn compiled_stream_honors_declared_mix(
        seed in any::<u64>(),
        raw_mix in arb_mix(),
    ) {
        const SERVE_OPS: usize = 4_000;
        let mut mix = raw_mix;
        if mix.delete > mix.insert {
            std::mem::swap(&mut mix.delete, &mut mix.insert);
        }
        let sc = Scenario {
            name: "mix-check".to_string(),
            seed,
            phases: vec![
                Phase {
                    name: "fill".to_string(),
                    dist: KeyDist::Uniform,
                    mix: OpMix::insert_only(),
                    ops: 2_000,
                    ramp: 0,
                },
                Phase {
                    name: "serve".to_string(),
                    dist: KeyDist::Uniform,
                    mix,
                    ops: SERVE_OPS,
                    ramp: 0,
                },
            ],
            events: vec![],
        };
        let compiled = compile(&sc);
        let span = &compiled.phases[1];
        let mut counts = [0usize; 5];
        for op in &compiled.ops[span.start..span.end] {
            match op {
                ScenarioOp::Insert(..) => counts[0] += 1,
                ScenarioOp::Read(..) => counts[1] += 1,
                ScenarioOp::Update(..) => counts[2] += 1,
                ScenarioOp::Scan(..) => counts[3] += 1,
                ScenarioOp::Delete(..) => counts[4] += 1,
            }
        }
        let total = mix.total() as f64;
        let weights = [mix.insert, mix.read, mix.update, mix.scan, mix.delete];
        for (got, want) in counts.iter().zip(weights) {
            let expected = f64::from(want) / total;
            let observed = *got as f64 / SERVE_OPS as f64;
            // 4000 draws: allow 5 percentage points of absolute slack.
            prop_assert!(
                (observed - expected).abs() < 0.05,
                "mix {mix:?}: expected {expected:.3}, observed {observed:.3}"
            );
        }
    }
}
