//! The declarative scenario DSL.
//!
//! A scenario is a line-oriented text document:
//!
//! ```text
//! # MM -> TX drift with a mid-run hot-key storm.
//! scenario mm-to-tx
//! seed 42
//! phase warmup dist=mm mix=insert:100 ops=20000
//! phase drift  dist=tx mix=insert:60,read:30,scan:10 ops=30000 ramp=5000
//! event hotkey at=25000 ops=2000 keys=8
//! event reload at=40000 n=5000
//! ```
//!
//! Each `phase` names a key distribution (see [`KeyDist`]), an operation
//! mix (weighted `insert`/`read`/`update`/`scan`/`delete`), a duration in
//! operations, and an optional `ramp`: for the first `ramp` ops of the
//! phase, insert keys are drawn from a mixture that interpolates from the
//! previous phase's distribution to this one's.
//!
//! Events inject disturbances at a global op offset: `hotkey` freezes the
//! stream onto a few live keys (a hot-key storm), `reload` splices a
//! sorted bulk upload of fresh keys. [`Scenario::parse`] and
//! [`Scenario::to_text`] are exact inverses for canonical documents —
//! property-tested in `tests/dsl_props.rs`.

use ycsb::KeyDist;

/// Weighted operation mix of one phase. Weights are relative (they need
/// not sum to 100); at least one must be non-zero.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct OpMix {
    /// Weight of inserts (fresh keys from the phase distribution).
    pub insert: u32,
    /// Weight of point reads of live keys.
    pub read: u32,
    /// Weight of in-place updates of live keys.
    pub update: u32,
    /// Weight of short ordered scans from live keys.
    pub scan: u32,
    /// Weight of deletes of live keys.
    pub delete: u32,
}

impl OpMix {
    /// 100% inserts.
    pub fn insert_only() -> OpMix {
        OpMix {
            insert: 100,
            ..OpMix::default()
        }
    }

    /// Sum of all weights.
    pub fn total(&self) -> u64 {
        self.insert as u64
            + self.read as u64
            + self.update as u64
            + self.scan as u64
            + self.delete as u64
    }

    fn to_token(self) -> String {
        let mut parts = Vec::new();
        for (name, w) in [
            ("insert", self.insert),
            ("read", self.read),
            ("update", self.update),
            ("scan", self.scan),
            ("delete", self.delete),
        ] {
            if w > 0 {
                parts.push(format!("{name}:{w}"));
            }
        }
        parts.join(",")
    }

    fn parse_token(tok: &str) -> Result<OpMix, String> {
        let mut mix = OpMix::default();
        for part in tok.split(',') {
            let (name, w) = part
                .split_once(':')
                .ok_or_else(|| format!("mix entry {part:?} is not name:weight"))?;
            let w: u32 = w
                .parse()
                .map_err(|_| format!("bad mix weight in {part:?}"))?;
            match name {
                "insert" => mix.insert = w,
                "read" => mix.read = w,
                "update" => mix.update = w,
                "scan" => mix.scan = w,
                "delete" => mix.delete = w,
                _ => return Err(format!("unknown mix op {name:?}")),
            }
        }
        if mix.total() == 0 {
            return Err(format!("mix {tok:?} has no weight"));
        }
        Ok(mix)
    }
}

/// One phase of a scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase {
    /// Display name (no whitespace).
    pub name: String,
    /// Insert-key distribution.
    pub dist: KeyDist,
    /// Operation mix.
    pub mix: OpMix,
    /// Duration in operations.
    pub ops: usize,
    /// Interpolation ramp length (ops) from the previous phase's
    /// distribution; 0 switches instantly. Ignored on the first phase.
    pub ramp: usize,
}

/// A disturbance injected at a global op offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// For `ops` operations starting at offset `at`, the stream hammers
    /// `keys` live keys with a 50/50 read/update mix.
    HotKeyStorm {
        /// Global op offset where the storm starts.
        at: usize,
        /// Storm length in ops.
        ops: usize,
        /// Number of distinct hot keys.
        keys: usize,
    },
    /// At offset `at`, splices a sorted bulk upload of `n` fresh keys
    /// drawn from the active phase distribution.
    BulkReload {
        /// Global op offset of the reload.
        at: usize,
        /// Number of keys bulk-inserted.
        n: usize,
    },
}

impl Event {
    /// Global op offset at which the event fires.
    pub fn at(&self) -> usize {
        match *self {
            Event::HotKeyStorm { at, .. } | Event::BulkReload { at, .. } => at,
        }
    }
}

/// A parsed scenario document.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario name (no whitespace).
    pub name: String,
    /// Seed for the deterministic op-stream compiler.
    pub seed: u64,
    /// Phases, replayed in order.
    pub phases: Vec<Phase>,
    /// Injected events, any order; the compiler sorts by offset.
    pub events: Vec<Event>,
}

fn kv_fields(rest: &str, line_no: usize) -> Result<Vec<(&str, &str)>, String> {
    rest.split_whitespace()
        .map(|field| {
            field
                .split_once('=')
                .ok_or_else(|| format!("line {line_no}: field {field:?} is not key=value"))
        })
        .collect()
}

impl Scenario {
    /// Total declared ops across phases (excluding spliced reload bursts).
    pub fn total_ops(&self) -> usize {
        self.phases.iter().map(|p| p.ops).sum()
    }

    /// Serializes to the canonical text form ([`Scenario::parse`]'s exact
    /// inverse).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("scenario {}\n", self.name));
        out.push_str(&format!("seed {}\n", self.seed));
        for p in &self.phases {
            out.push_str(&format!(
                "phase {} dist={} mix={} ops={}",
                p.name,
                p.dist.to_token(),
                p.mix.to_token(),
                p.ops
            ));
            if p.ramp > 0 {
                out.push_str(&format!(" ramp={}", p.ramp));
            }
            out.push('\n');
        }
        for e in &self.events {
            match *e {
                Event::HotKeyStorm { at, ops, keys } => {
                    out.push_str(&format!("event hotkey at={at} ops={ops} keys={keys}\n"));
                }
                Event::BulkReload { at, n } => {
                    out.push_str(&format!("event reload at={at} n={n}\n"));
                }
            }
        }
        out
    }

    /// Parses a scenario document.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the offending line for any
    /// syntax or validation failure.
    pub fn parse(text: &str) -> Result<Scenario, String> {
        let mut name: Option<String> = None;
        let mut seed = 0u64;
        let mut phases = Vec::new();
        let mut events = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line_no = i + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (head, rest) = match line.split_once(char::is_whitespace) {
                Some((h, r)) => (h, r.trim()),
                None => (line, ""),
            };
            match head {
                "scenario" => {
                    if rest.is_empty() || rest.contains(char::is_whitespace) {
                        return Err(format!("line {line_no}: scenario needs one name"));
                    }
                    name = Some(rest.to_string());
                }
                "seed" => {
                    seed = rest
                        .parse()
                        .map_err(|_| format!("line {line_no}: bad seed {rest:?}"))?;
                }
                "phase" => {
                    let (pname, fields) = rest
                        .split_once(char::is_whitespace)
                        .ok_or_else(|| format!("line {line_no}: phase needs a name and fields"))?;
                    let mut dist = None;
                    let mut mix = None;
                    let mut ops = None;
                    let mut ramp = 0usize;
                    for (k, v) in kv_fields(fields, line_no)? {
                        match k {
                            "dist" => {
                                dist = Some(
                                    KeyDist::parse_token(v)
                                        .map_err(|e| format!("line {line_no}: {e}"))?,
                                )
                            }
                            "mix" => {
                                mix = Some(
                                    OpMix::parse_token(v)
                                        .map_err(|e| format!("line {line_no}: {e}"))?,
                                )
                            }
                            "ops" => {
                                ops = Some(
                                    v.parse()
                                        .map_err(|_| format!("line {line_no}: bad ops {v:?}"))?,
                                )
                            }
                            "ramp" => {
                                ramp = v
                                    .parse()
                                    .map_err(|_| format!("line {line_no}: bad ramp {v:?}"))?
                            }
                            _ => return Err(format!("line {line_no}: unknown phase field {k:?}")),
                        }
                    }
                    phases.push(Phase {
                        name: pname.to_string(),
                        dist: dist.ok_or_else(|| format!("line {line_no}: phase needs dist="))?,
                        mix: mix.ok_or_else(|| format!("line {line_no}: phase needs mix="))?,
                        ops: ops.ok_or_else(|| format!("line {line_no}: phase needs ops="))?,
                        ramp,
                    });
                }
                "event" => {
                    let (kind, fields) = match rest.split_once(char::is_whitespace) {
                        Some((k, f)) => (k, f),
                        None => (rest, ""),
                    };
                    let get = |want: &str| -> Result<usize, String> {
                        for (k, v) in kv_fields(fields, line_no)? {
                            if k == want {
                                return v
                                    .parse()
                                    .map_err(|_| format!("line {line_no}: bad {want} {v:?}"));
                            }
                        }
                        Err(format!("line {line_no}: event {kind} needs {want}="))
                    };
                    match kind {
                        "hotkey" => events.push(Event::HotKeyStorm {
                            at: get("at")?,
                            ops: get("ops")?,
                            keys: get("keys")?,
                        }),
                        "reload" => events.push(Event::BulkReload {
                            at: get("at")?,
                            n: get("n")?,
                        }),
                        _ => return Err(format!("line {line_no}: unknown event {kind:?}")),
                    }
                }
                _ => return Err(format!("line {line_no}: unknown directive {head:?}")),
            }
        }
        let sc = Scenario {
            name: name.ok_or("missing `scenario <name>` line")?,
            seed,
            phases,
            events,
        };
        sc.validate()?;
        Ok(sc)
    }

    /// Structural validation shared by [`Scenario::parse`] and
    /// programmatic construction.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first violated rule.
    pub fn validate(&self) -> Result<(), String> {
        if self.phases.is_empty() {
            return Err("scenario has no phases".to_string());
        }
        let total = self.total_ops();
        for p in &self.phases {
            if p.ops == 0 {
                return Err(format!("phase {:?} has ops=0", p.name));
            }
            if p.ramp > p.ops {
                return Err(format!(
                    "phase {:?}: ramp {} > ops {}",
                    p.name, p.ramp, p.ops
                ));
            }
            if p.mix.total() == 0 {
                return Err(format!("phase {:?} has an all-zero mix", p.name));
            }
            if p.name.is_empty() || p.name.contains(char::is_whitespace) {
                return Err(format!("bad phase name {:?}", p.name));
            }
        }
        for e in &self.events {
            if e.at() >= total {
                return Err(format!(
                    "event at offset {} is past the scenario's {total} ops",
                    e.at()
                ));
            }
            match *e {
                Event::HotKeyStorm { ops, keys, .. } => {
                    if ops == 0 || keys == 0 {
                        return Err("hotkey storm needs ops>0 and keys>0".to_string());
                    }
                }
                Event::BulkReload { n, .. } => {
                    if n == 0 {
                        return Err("reload needs n>0".to_string());
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = "\
# comment\n\
scenario mm-to-tx\n\
seed 42\n\
phase warmup dist=mm mix=insert:100 ops=20000\n\
phase drift dist=tx mix=insert:60,read:30,scan:10 ops=30000 ramp=5000\n\
event hotkey at=25000 ops=2000 keys=8\n\
event reload at=40000 n=5000\n";

    #[test]
    fn parses_the_doc_example() {
        let sc = Scenario::parse(DOC).expect("parse");
        assert_eq!(sc.name, "mm-to-tx");
        assert_eq!(sc.seed, 42);
        assert_eq!(sc.phases.len(), 2);
        assert_eq!(sc.phases[0].dist, KeyDist::Mm);
        assert_eq!(sc.phases[0].mix, OpMix::insert_only());
        assert_eq!(sc.phases[1].ramp, 5_000);
        assert_eq!(
            sc.events,
            vec![
                Event::HotKeyStorm {
                    at: 25_000,
                    ops: 2_000,
                    keys: 8
                },
                Event::BulkReload {
                    at: 40_000,
                    n: 5_000
                }
            ]
        );
        assert_eq!(sc.total_ops(), 50_000);
    }

    #[test]
    fn roundtrips_through_text() {
        let sc = Scenario::parse(DOC).expect("parse");
        let text = sc.to_text();
        let again = Scenario::parse(&text).expect("reparse");
        assert_eq!(sc, again);
        assert_eq!(text, again.to_text());
    }

    #[test]
    fn rejects_malformed_documents() {
        for (doc, why) in [
            ("seed 1\nphase p dist=mm mix=insert:1 ops=10\n", "no name"),
            ("scenario x\n", "no phases"),
            ("scenario x\nphase p dist=mm mix=insert:1 ops=0\n", "ops=0"),
            (
                "scenario x\nphase p dist=mm mix=insert:1 ops=5 ramp=9\n",
                "ramp > ops",
            ),
            (
                "scenario x\nphase p dist=wat mix=insert:1 ops=5\n",
                "bad dist",
            ),
            (
                "scenario x\nphase p dist=mm mix=fly:1 ops=5\n",
                "bad mix op",
            ),
            (
                "scenario x\nphase p dist=mm mix=insert:1 ops=5\nevent hotkey at=99 ops=1 keys=1\n",
                "event past end",
            ),
            (
                "scenario x\nphase p dist=mm mix=insert:1 ops=5\nevent quake at=1 ops=1\n",
                "unknown event",
            ),
        ] {
            assert!(Scenario::parse(doc).is_err(), "should reject: {why}");
        }
    }

    #[test]
    fn mix_token_omits_zero_weights() {
        let mix = OpMix {
            insert: 60,
            read: 30,
            scan: 10,
            ..OpMix::default()
        };
        assert_eq!(mix.to_token(), "insert:60,read:30,scan:10");
        assert_eq!(OpMix::parse_token("insert:60,read:30,scan:10"), Ok(mix));
    }
}
