//! The dynamic-dataset scenario lab.
//!
//! DyTIS's premise is datasets whose key distribution *shifts over time*
//! (paper §2.1, Figures 1–3), yet stationary harnesses never exercise the
//! remapping/shrink machinery as a measured artifact. This crate closes
//! that gap with a drift-replay workload driver:
//!
//! - [`dsl`] — a small declarative scenario language: phases with a key
//!   distribution (MM/TX/uniform/zipf), an op mix, a duration in ops, and
//!   an interpolation ramp; plus hot-key-storm and bulk-reload events.
//! - [`stream`] — deterministic, target-independent expansion of a
//!   scenario into a concrete op stream with phase markers.
//! - [`runner`] — replays a compiled stream against any
//!   [`runner::ScenarioTarget`] (an in-process `KvIndex`, DyTIS with live
//!   counters, or a network client adapter), sampling variance of
//!   skewness and window-KL divergence against `maintenance_stats()`.
//! - [`timeline`] — the per-phase JSON timeline (`BENCH_scenarios.json`).
//! - [`builtin`] — the standard battery: MM→TX drift (plus its stationary
//!   control), hot-key storm, delete-heavy shrink.
//! - [`chaos`] — kills a `DurableShardedStore` mid-drift and asserts WAL
//!   recovery, oracle agreement, and a clean deep audit.
//!
//! See DESIGN.md §13 for the architecture and EXPERIMENTS.md for how to
//! read the timeline output.

pub mod builtin;
pub mod chaos;
pub mod dsl;
pub mod runner;
pub mod stream;
pub mod timeline;

pub use chaos::{run_chaos, ChaosOptions, ChaosReport};
pub use dsl::{Event, OpMix, Phase, Scenario};
pub use runner::{run, DytisTarget, IndexTarget, RunOptions, ScenarioTarget};
pub use stream::{
    compile, ramp_weight, sample_ramped, CompiledScenario, PhaseSpan, RampSource, ScenarioOp,
    SCAN_COUNT,
};
pub use timeline::{PhaseResult, Sample, Timeline};
