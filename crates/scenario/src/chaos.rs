//! Chaos layer: drives a [`DurableShardedStore`] through a drift scenario
//! and kills it (`kill -9` simulation via [`DurableShardedStore::crash`])
//! at intervals mid-stream, asserting after every restart that
//!
//! 1. recovery restores exactly the acknowledged-op oracle, and
//! 2. every shard's deep structural audit comes back clean.
//!
//! This composes the PR 3 crash path with drift-time maintenance: splits,
//! remaps, and shrinks are in flight when the process dies.

use crate::stream::{CompiledScenario, ScenarioOp, SCAN_COUNT};
use index_traits::{Key, Value};
use kvstore::{DurabilityOptions, DurableShardedStore};
use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// Chaos run configuration.
#[derive(Debug, Clone, Copy)]
pub struct ChaosOptions {
    /// Kill the store after every `kill_every` acknowledged mutations.
    pub kill_every: usize,
    /// Durability options used for every open/reopen.
    pub durability: DurabilityOptions,
    /// Checkpoint before every other kill, so recovery exercises both the
    /// checkpoint+replay and the pure-replay paths.
    pub checkpoint_alternate: bool,
}

/// What happened during a chaos run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosReport {
    /// Crash/recover cycles performed.
    pub kills: usize,
    /// Mutations acknowledged (and therefore in the oracle).
    pub acked: usize,
    /// Keys live at the end of the run.
    pub final_len: usize,
    /// Total audit checks across all post-recovery audits.
    pub audit_checks: usize,
}

fn verify(store: &DurableShardedStore, oracle: &BTreeMap<Key, Value>, when: &str) -> usize {
    assert_eq!(
        store.len(),
        oracle.len(),
        "{when}: recovered len diverged from acked oracle"
    );
    let got = store.scan(0, oracle.len() + 16);
    let want: Vec<(Key, Value)> = oracle.iter().map(|(&k, &v)| (k, v)).collect();
    assert_eq!(got, want, "{when}: recovered contents diverged");
    let report = store.audit();
    assert!(
        report.is_clean(),
        "{when}: post-recovery audit dirty: {report:?}"
    );
    assert!(report.checks > 0, "{when}: vacuous audit");
    report.checks
}

/// Replays `compiled` against a durable store in `dir`, crashing and
/// recovering every `opts.kill_every` acked mutations.
///
/// # Errors
///
/// Propagates store open/recovery I/O errors. Acked-durability or audit
/// violations panic (this is a test harness: divergence is a bug, not an
/// environmental condition).
///
/// # Panics
///
/// Panics if recovery loses an acknowledged op, resurrects an unacked
/// one, or any post-recovery audit reports a violation.
pub fn run_chaos(
    dir: &Path,
    compiled: &CompiledScenario,
    opts: &ChaosOptions,
) -> io::Result<ChaosReport> {
    assert!(opts.kill_every > 0);
    let mut store = Some(DurableShardedStore::open(dir, opts.durability)?);
    let mut oracle: BTreeMap<Key, Value> = BTreeMap::new();
    let mut acked = 0usize;
    let mut since_kill = 0usize;
    let mut kills = 0usize;
    let mut audit_checks = 0usize;

    for op in &compiled.ops {
        // invariant: `store` is always re-populated after a kill below.
        let s = store.as_ref().expect("store open");
        match *op {
            ScenarioOp::Insert(k, v) | ScenarioOp::Update(k, v) => {
                s.set(k, v)?;
                oracle.insert(k, v);
                acked += 1;
                since_kill += 1;
            }
            ScenarioOp::Delete(k) => {
                let prev = s.del(k)?;
                assert_eq!(prev, oracle.remove(&k), "delete returned wrong previous");
                acked += 1;
                since_kill += 1;
            }
            ScenarioOp::Read(k) => {
                assert_eq!(s.get(k), oracle.get(&k).copied(), "read diverged");
            }
            ScenarioOp::Scan(k) => {
                let got = s.scan(k, SCAN_COUNT);
                let want: Vec<(Key, Value)> = oracle
                    .range(k..)
                    .take(SCAN_COUNT)
                    .map(|(&k, &v)| (k, v))
                    .collect();
                assert_eq!(got, want, "scan diverged");
            }
        }
        if since_kill >= opts.kill_every {
            since_kill = 0;
            // invariant: `store` held Some at the top of the iteration.
            let s = store.take().expect("store open");
            if opts.checkpoint_alternate && kills.is_multiple_of(2) {
                s.checkpoint_now()?;
            }
            s.crash();
            kills += 1;
            let reopened = DurableShardedStore::open(dir, opts.durability)?;
            audit_checks += verify(&reopened, &oracle, &format!("after kill {kills}"));
            store = Some(reopened);
        }
    }

    // invariant: the loop above always leaves `store` repopulated.
    let s = store.take().expect("store open");
    s.crash();
    let reopened = DurableShardedStore::open(dir, opts.durability)?;
    audit_checks += verify(&reopened, &oracle, "final recovery");
    let final_len = reopened.len();
    reopened.shutdown()?;

    Ok(ChaosReport {
        kills: kills + 1,
        acked,
        final_len,
        audit_checks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin;
    use crate::stream::compile;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "scenario-chaos-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn chaos_smoke_survives_two_kills() {
        let dir = temp_dir("smoke");
        let compiled = compile(&builtin::mm_to_tx_drift(600));
        let report = run_chaos(
            &dir,
            &compiled,
            &ChaosOptions {
                kill_every: 500,
                durability: DurabilityOptions {
                    shard_bits: 1,
                    ops_per_checkpoint: 0,
                    max_batch_records: 64,
                    params: dytis::Params::small(),
                },
                checkpoint_alternate: true,
            },
        )
        .expect("chaos run");
        assert!(report.kills >= 2, "{report:?}");
        assert!(report.acked > 1_000, "{report:?}");
        assert!(report.audit_checks > 0, "{report:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
