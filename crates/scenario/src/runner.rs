//! The drift-replay runner: executes a compiled scenario against any
//! target, sampling the dynamic-dataset metrics (variance of skewness, KL
//! divergence between consecutive insert windows) live against the
//! target's maintenance counters.

use crate::stream::{CompiledScenario, ScenarioOp, SCAN_COUNT};
use crate::timeline::{PhaseResult, Sample, Timeline};
use index_traits::{Key, KvIndex, MaintenanceStats, Value};
use std::time::Instant;

/// Anything a scenario can drive: an in-process index, the durable store,
/// or a network client. Methods take `&mut self` so adapters can own
/// connections and cursors.
pub trait ScenarioTarget {
    /// Upsert.
    fn set(&mut self, key: Key, value: Value);
    /// Point lookup.
    fn get(&mut self, key: Key) -> Option<Value>;
    /// Delete; returns the previous value if present.
    fn del(&mut self, key: Key) -> Option<Value>;
    /// Ordered scan appending up to `count` pairs.
    fn scan(&mut self, start: Key, count: usize, out: &mut Vec<(Key, Value)>);
    /// Maintenance counters, if the target exposes them. Targets without
    /// counters still get skewness/KL sampling; their deltas read zero.
    fn maintenance_stats(&mut self) -> Option<MaintenanceStats> {
        None
    }
    /// Display name for the timeline JSON.
    fn target_name(&self) -> &'static str;
}

/// Adapter driving any [`KvIndex`] (no maintenance counters).
pub struct IndexTarget<'a, I: KvIndex> {
    /// The wrapped index.
    pub idx: &'a mut I,
}

impl<I: KvIndex> ScenarioTarget for IndexTarget<'_, I> {
    fn set(&mut self, key: Key, value: Value) {
        self.idx.insert(key, value);
    }
    fn get(&mut self, key: Key) -> Option<Value> {
        self.idx.get(key)
    }
    fn del(&mut self, key: Key) -> Option<Value> {
        self.idx.remove(key)
    }
    fn scan(&mut self, start: Key, count: usize, out: &mut Vec<(Key, Value)>) {
        self.idx.scan(start, count, out);
    }
    fn target_name(&self) -> &'static str {
        self.idx.name()
    }
}

/// Adapter driving a [`dytis::DyTis`] with live maintenance counters.
pub struct DytisTarget<'a> {
    /// The wrapped index.
    pub idx: &'a mut dytis::DyTis,
}

impl ScenarioTarget for DytisTarget<'_> {
    fn set(&mut self, key: Key, value: Value) {
        self.idx.insert(key, value);
    }
    fn get(&mut self, key: Key) -> Option<Value> {
        KvIndex::get(self.idx, key)
    }
    fn del(&mut self, key: Key) -> Option<Value> {
        self.idx.remove(key)
    }
    fn scan(&mut self, start: Key, count: usize, out: &mut Vec<(Key, Value)>) {
        KvIndex::scan(self.idx, start, count, out);
    }
    fn maintenance_stats(&mut self) -> Option<MaintenanceStats> {
        Some(self.idx.stats().ops)
    }
    fn target_name(&self) -> &'static str {
        "dytis"
    }
}

/// Sampling configuration of one run.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Ops between metric samples.
    pub sample_every: usize,
    /// Insert-window length for the skewness/KL computation.
    pub window: usize,
    /// Histogram bins for the KL computation.
    pub bins: usize,
    /// PLR chunk size for the skewness computation.
    pub chunk: usize,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            sample_every: 2_000,
            window: 2_000,
            bins: 64,
            chunk: 1_024,
        }
    }
}

/// Replays `compiled` against `target`, producing the per-phase timeline.
///
/// # Panics
///
/// Panics if `opts.sample_every`, `opts.window`, or `opts.chunk` is 0.
pub fn run<T: ScenarioTarget>(
    target: &mut T,
    compiled: &CompiledScenario,
    opts: &RunOptions,
) -> Timeline {
    assert!(opts.sample_every > 0 && opts.window > 0 && opts.chunk > 0);
    let delta_bound = dyn_metrics::calibrated_error_bound(opts.chunk);
    let start_stats = target.maintenance_stats().unwrap_or_default();
    let mut samples = Vec::new();
    let mut phases = Vec::new();
    let mut scan_buf: Vec<(Key, Value)> = Vec::with_capacity(SCAN_COUNT);
    let mut sink = 0u64;
    // Sliding insert windows: `cur` fills, then rolls into `prev`.
    let mut prev_window: Vec<Key> = Vec::new();
    let mut cur_window: Vec<Key> = Vec::with_capacity(opts.window);

    for span in &compiled.phases {
        let phase_t0 = Instant::now();
        let phase_before = target.maintenance_stats().unwrap_or_default();
        for (i, op) in compiled.ops[span.start..span.end].iter().enumerate() {
            let g = span.start + i;
            match *op {
                ScenarioOp::Insert(k, v) => {
                    target.set(k, v);
                    if cur_window.len() == opts.window {
                        prev_window = std::mem::take(&mut cur_window);
                    }
                    cur_window.push(k);
                }
                ScenarioOp::Read(k) => sink ^= target.get(k).unwrap_or(0),
                ScenarioOp::Update(k, v) => target.set(k, v),
                ScenarioOp::Scan(k) => {
                    scan_buf.clear();
                    target.scan(k, SCAN_COUNT, &mut scan_buf);
                    sink ^= scan_buf.len() as u64;
                }
                ScenarioOp::Delete(k) => {
                    sink ^= target.del(k).unwrap_or(0);
                }
            }
            if (g + 1) % opts.sample_every == 0 {
                let skewness = if cur_window.len() >= opts.chunk / 2 {
                    dyn_metrics::variance_of_skewness(&cur_window, opts.chunk, delta_bound)
                } else {
                    0.0
                };
                let kl = dyn_metrics::window_kl(&prev_window, &cur_window, opts.bins);
                samples.push(Sample {
                    op_index: g + 1,
                    phase: span.name.clone(),
                    skewness,
                    kl,
                    stats: target
                        .maintenance_stats()
                        .unwrap_or_default()
                        .delta_since(&start_stats),
                });
            }
        }
        let phase_after = target.maintenance_stats().unwrap_or_default();
        phases.push(PhaseResult {
            name: span.name.clone(),
            start: span.start,
            end: span.end,
            elapsed_ns: phase_t0.elapsed().as_nanos() as u64,
            delta: phase_after.delta_since(&phase_before),
        });
    }
    std::hint::black_box(sink);

    let total = target
        .maintenance_stats()
        .unwrap_or_default()
        .delta_since(&start_stats);
    Timeline {
        scenario: compiled.name.clone(),
        target: target.target_name().to_string(),
        ops: compiled.ops.len(),
        samples,
        phases,
        total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin;
    use crate::stream::compile;
    use dytis::{DyTis, Params};

    #[test]
    fn runner_samples_and_tracks_phases() {
        let sc = builtin::mm_to_tx_drift(4_000);
        let compiled = compile(&sc);
        let mut idx = DyTis::with_params(Params::small());
        let mut target = DytisTarget { idx: &mut idx };
        let opts = RunOptions {
            sample_every: 1_000,
            window: 1_000,
            ..RunOptions::default()
        };
        let tl = run(&mut target, &compiled, &opts);
        assert_eq!(tl.phases.len(), sc.phases.len());
        assert!(!tl.samples.is_empty());
        assert!(tl.samples.iter().all(|s| s.kl >= 0.0));
        assert!(tl.total.total_ops() > 0, "no maintenance fired: {tl:?}");
        // Phase spans partition the run.
        assert_eq!(tl.phases[0].start, 0);
        assert_eq!(tl.phases.last().map(|p| p.end), Some(tl.ops));
    }

    #[test]
    fn index_target_has_no_stats_but_still_samples() {
        let sc = builtin::delete_heavy_shrink(2_000);
        let compiled = compile(&sc);
        let mut oracle = std::collections::BTreeMap::new();
        struct MapTarget<'a>(&'a mut std::collections::BTreeMap<Key, Value>);
        impl ScenarioTarget for MapTarget<'_> {
            fn set(&mut self, k: Key, v: Value) {
                self.0.insert(k, v);
            }
            fn get(&mut self, k: Key) -> Option<Value> {
                self.0.get(&k).copied()
            }
            fn del(&mut self, k: Key) -> Option<Value> {
                self.0.remove(&k)
            }
            fn scan(&mut self, start: Key, count: usize, out: &mut Vec<(Key, Value)>) {
                out.extend(self.0.range(start..).take(count).map(|(k, v)| (*k, *v)));
            }
            fn target_name(&self) -> &'static str {
                "btreemap"
            }
        }
        let tl = run(
            &mut MapTarget(&mut oracle),
            &compiled,
            &RunOptions::default(),
        );
        assert_eq!(tl.total, MaintenanceStats::default());
        assert!(!tl.samples.is_empty());
    }
}
