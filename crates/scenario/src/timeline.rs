//! Timeline data model and its hand-rolled JSON serialization (the repo
//! vendors no serde; see `bench/src/bin/ycsb_mt.rs` for the idiom).

use index_traits::MaintenanceStats;

/// One live metric sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Global op index the sample was taken at (1-based: after that op).
    pub op_index: usize,
    /// Name of the phase the sample falls in.
    pub phase: String,
    /// Variance of skewness of the current insert window (PLR models per
    /// chunk; 0 when the window is still too small).
    pub skewness: f64,
    /// KL divergence between the previous and current insert windows.
    pub kl: f64,
    /// Maintenance counters accumulated since the run started.
    pub stats: MaintenanceStats,
}

/// Aggregate result of one phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseResult {
    /// Phase name.
    pub name: String,
    /// First op index (inclusive).
    pub start: usize,
    /// One past the last op index.
    pub end: usize,
    /// Wall-clock nanoseconds spent in the phase.
    pub elapsed_ns: u64,
    /// Maintenance counters fired during the phase.
    pub delta: MaintenanceStats,
}

/// The full result of one scenario run.
#[derive(Debug, Clone, PartialEq)]
pub struct Timeline {
    /// Scenario name.
    pub scenario: String,
    /// Target display name.
    pub target: String,
    /// Total ops replayed.
    pub ops: usize,
    /// Live metric samples in op order.
    pub samples: Vec<Sample>,
    /// Per-phase aggregates in phase order.
    pub phases: Vec<PhaseResult>,
    /// Maintenance counters for the whole run.
    pub total: MaintenanceStats,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn stats_json(s: &MaintenanceStats) -> String {
    format!(
        concat!(
            "{{\"splits\":{},\"expansions\":{},\"remaps\":{},",
            "\"doublings\":{},\"shrinks\":{},\"keys_moved\":{}}}"
        ),
        s.splits, s.expansions, s.remaps, s.doublings, s.shrinks, s.keys_moved
    )
}

impl Timeline {
    /// Serializes the timeline as one JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str(&format!(
            "{{\"scenario\":\"{}\",\"target\":\"{}\",\"ops\":{},",
            json_escape(&self.scenario),
            json_escape(&self.target),
            self.ops
        ));
        out.push_str("\"phases\":[");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"start\":{},\"end\":{},\"elapsed_ns\":{},\"maintenance\":{}}}",
                json_escape(&p.name),
                p.start,
                p.end,
                p.elapsed_ns,
                stats_json(&p.delta)
            ));
        }
        out.push_str("],\"samples\":[");
        for (i, s) in self.samples.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                concat!(
                    "{{\"op\":{},\"phase\":\"{}\",\"skewness\":{:.4},",
                    "\"kl\":{:.6},\"stats\":{}}}"
                ),
                s.op_index,
                json_escape(&s.phase),
                s.skewness,
                s.kl,
                stats_json(&s.stats)
            ));
        }
        out.push_str(&format!("],\"total\":{}}}", stats_json(&self.total)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_has_expected_shape() {
        let tl = Timeline {
            scenario: "s\"1".into(),
            target: "dytis".into(),
            ops: 10,
            samples: vec![Sample {
                op_index: 5,
                phase: "a".into(),
                skewness: 1.25,
                kl: 0.5,
                stats: MaintenanceStats {
                    splits: 1,
                    shrinks: 2,
                    ..Default::default()
                },
            }],
            phases: vec![PhaseResult {
                name: "a".into(),
                start: 0,
                end: 10,
                elapsed_ns: 123,
                delta: MaintenanceStats::default(),
            }],
            total: MaintenanceStats::default(),
        };
        let j = tl.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"scenario\":\"s\\\"1\""));
        assert!(j.contains("\"shrinks\":2"));
        assert!(j.contains("\"elapsed_ns\":123"));
        assert_eq!(j.matches("\"maintenance\"").count(), 1);
        // Balanced braces (cheap well-formedness proxy without a parser).
        let open = j.matches('{').count();
        let close = j.matches('}').count();
        assert_eq!(open, close);
    }
}
