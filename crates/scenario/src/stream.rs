//! Deterministic expansion of a [`Scenario`] into a concrete op stream.
//!
//! Compilation is *target independent*: the stream depends only on the
//! scenario and its seed, never on index behavior, so every `KvIndex`
//! implementation (and the BTreeMap oracle) replays byte-identical
//! operation sequences in the drift differential tests. The compiler
//! simulates the live key set itself to pick read/update/delete/scan
//! victims.

use crate::dsl::{Event, Scenario};
use index_traits::{Key, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use ycsb::KeySampler;

/// Keys returned per scan op.
pub const SCAN_COUNT: usize = 64;

/// One concrete operation of a compiled scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioOp {
    /// Upsert of a freshly drawn key.
    Insert(Key, Value),
    /// Point lookup of a (probably) live key.
    Read(Key),
    /// In-place update of a live key.
    Update(Key, Value),
    /// Ordered scan of up to [`SCAN_COUNT`] pairs from `start`.
    Scan(Key),
    /// Delete of a live key.
    Delete(Key),
}

/// Which endpoint distribution produced a ramped insert key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RampSource {
    /// The previous phase's sampler.
    Prev,
    /// The current phase's sampler.
    Cur,
}

/// Mixture weight of the *current* phase's distribution at ramp position
/// `i` of `ramp` (0-based). Starts near 0, ends near 1, monotone.
pub fn ramp_weight(i: usize, ramp: usize) -> f64 {
    if ramp == 0 {
        return 1.0;
    }
    (i as f64 + 1.0) / (ramp as f64 + 1.0)
}

/// Draws one ramped insert key: the current sampler with probability `w`,
/// the previous one otherwise. Exposed (with provenance) so the DSL
/// property tests can verify the interpolation stays within its two
/// endpoint distributions.
pub fn sample_ramped(
    prev: &mut KeySampler,
    cur: &mut KeySampler,
    w: f64,
    rng: &mut StdRng,
) -> (Key, RampSource) {
    if rng.gen_bool(w.clamp(0.0, 1.0)) {
        (cur.sample(rng), RampSource::Cur)
    } else {
        (prev.sample(rng), RampSource::Prev)
    }
}

/// Span of one phase within the compiled op vector. `start..end` indexes
/// [`CompiledScenario::ops`]; spliced reload bursts extend the span they
/// fire in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseSpan {
    /// Phase name from the DSL.
    pub name: String,
    /// First op index of the phase (inclusive).
    pub start: usize,
    /// One past the last op index of the phase.
    pub end: usize,
}

/// A fully expanded scenario: the op stream plus phase markers.
#[derive(Debug, Clone)]
pub struct CompiledScenario {
    /// Scenario name.
    pub name: String,
    /// Seed the stream was expanded from.
    pub seed: u64,
    /// The concrete operation sequence.
    pub ops: Vec<ScenarioOp>,
    /// Phase boundaries over `ops`.
    pub phases: Vec<PhaseSpan>,
}

/// The compiler's simulated live-key set: O(1) insert, delete, and
/// uniform victim pick via swap-remove.
struct LiveSet {
    keys: Vec<Key>,
    pos: HashMap<Key, usize>,
}

impl LiveSet {
    fn new() -> LiveSet {
        LiveSet {
            keys: Vec::new(),
            pos: HashMap::new(),
        }
    }

    fn insert(&mut self, k: Key) {
        if !self.pos.contains_key(&k) {
            self.pos.insert(k, self.keys.len());
            self.keys.push(k);
        }
    }

    fn remove(&mut self, k: Key) {
        if let Some(i) = self.pos.remove(&k) {
            let last = self.keys.len() - 1;
            self.keys.swap(i, last);
            self.keys.pop();
            if i < self.keys.len() {
                self.pos.insert(self.keys[i], i);
            }
        }
    }

    fn pick(&self, rng: &mut StdRng) -> Option<Key> {
        if self.keys.is_empty() {
            None
        } else {
            Some(self.keys[rng.gen_range(0..self.keys.len())])
        }
    }

    fn len(&self) -> usize {
        self.keys.len()
    }
}

/// Expands `sc` into its deterministic op stream.
///
/// # Panics
///
/// Panics if the scenario fails [`Scenario::validate`] — compile inputs
/// are expected to be pre-validated (parse always validates).
pub fn compile(sc: &Scenario) -> CompiledScenario {
    if let Err(e) = sc.validate() {
        panic!("compile of invalid scenario: {e}");
    }
    let mut rng = StdRng::seed_from_u64(sc.seed);
    let mut live = LiveSet::new();
    let mut ops: Vec<ScenarioOp> = Vec::with_capacity(sc.total_ops());
    let mut phases = Vec::with_capacity(sc.phases.len());
    let mut value_counter: Value = 0;
    let mut prev_sampler: Option<KeySampler> = None;
    // Storm state: when Some, ops hammer this snapshot until `g` reaches
    // the stored end offset (in declared-op coordinates).
    let mut storm: Option<(Vec<Key>, usize)> = None;
    // Global declared-op index: event offsets address this counter, so
    // spliced reload bursts do not shift later events.
    let mut g = 0usize;

    for (pi, phase) in sc.phases.iter().enumerate() {
        let span_start = ops.len();
        let mut cur_sampler = KeySampler::new(phase.dist, sc.seed ^ ((pi as u64) << 32));
        for j in 0..phase.ops {
            // Fire events scheduled at this declared offset.
            for e in &sc.events {
                match *e {
                    Event::HotKeyStorm { at, ops: len, keys } if at == g => {
                        let n = keys.min(live.len());
                        let snapshot: Vec<Key> =
                            (0..n).filter_map(|_| live.pick(&mut rng)).collect();
                        if !snapshot.is_empty() {
                            storm = Some((snapshot, g + len));
                        }
                    }
                    Event::BulkReload { at, n } if at == g => {
                        let mut batch: Vec<Key> =
                            (0..n).map(|_| cur_sampler.sample(&mut rng)).collect();
                        batch.sort_unstable();
                        batch.dedup();
                        for k in batch {
                            live.insert(k);
                            ops.push(ScenarioOp::Insert(k, value_counter));
                            value_counter += 1;
                        }
                    }
                    _ => {}
                }
            }
            if let Some((_, end)) = &storm {
                if g >= *end {
                    storm = None;
                }
            }

            let op = if let Some((hot, _)) = &storm {
                // Storm semantics: 50/50 read/update over the hot set.
                let k = hot[rng.gen_range(0..hot.len())];
                if rng.gen_bool(0.5) {
                    ScenarioOp::Read(k)
                } else {
                    value_counter += 1;
                    ScenarioOp::Update(k, value_counter - 1)
                }
            } else {
                let roll = rng.gen_range(0..phase.mix.total());
                let m = &phase.mix;
                let want_insert = roll < m.insert as u64;
                if want_insert || live.len() == 0 {
                    // Fresh key: ramped between the previous and current
                    // phase distributions for the first `ramp` ops.
                    let key = match (&mut prev_sampler, pi > 0 && j < phase.ramp) {
                        (Some(prev), true) => {
                            let w = ramp_weight(j, phase.ramp);
                            sample_ramped(prev, &mut cur_sampler, w, &mut rng).0
                        }
                        _ => cur_sampler.sample(&mut rng),
                    };
                    live.insert(key);
                    value_counter += 1;
                    ScenarioOp::Insert(key, value_counter - 1)
                } else if roll < (m.insert + m.read) as u64 {
                    // invariant: live is non-empty on this branch (checked
                    // above), so pick() returns Some.
                    ScenarioOp::Read(live.pick(&mut rng).expect("live non-empty"))
                } else if roll < (m.insert + m.read + m.update) as u64 {
                    value_counter += 1;
                    ScenarioOp::Update(
                        // invariant: live is non-empty on this branch.
                        live.pick(&mut rng).expect("live non-empty"),
                        value_counter - 1,
                    )
                } else if roll < (m.insert + m.read + m.update + m.scan) as u64 {
                    // invariant: live is non-empty on this branch.
                    ScenarioOp::Scan(live.pick(&mut rng).expect("live non-empty"))
                } else {
                    // invariant: live is non-empty on this branch.
                    let k = live.pick(&mut rng).expect("live non-empty");
                    live.remove(k);
                    ScenarioOp::Delete(k)
                }
            };
            ops.push(op);
            g += 1;
        }
        prev_sampler = Some(cur_sampler);
        phases.push(PhaseSpan {
            name: phase.name.clone(),
            start: span_start,
            end: ops.len(),
        });
    }

    CompiledScenario {
        name: sc.name.clone(),
        seed: sc.seed,
        ops,
        phases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::{OpMix, Phase};
    use ycsb::KeyDist;

    fn two_phase(seed: u64, events: Vec<Event>) -> Scenario {
        Scenario {
            name: "t".into(),
            seed,
            phases: vec![
                Phase {
                    name: "a".into(),
                    dist: KeyDist::Uniform,
                    mix: OpMix::insert_only(),
                    ops: 2_000,
                    ramp: 0,
                },
                Phase {
                    name: "b".into(),
                    dist: KeyDist::Tx,
                    mix: OpMix {
                        insert: 40,
                        read: 30,
                        update: 10,
                        scan: 10,
                        delete: 10,
                    },
                    ops: 3_000,
                    ramp: 1_000,
                },
            ],
            events,
        }
    }

    #[test]
    fn compile_is_deterministic() {
        let sc = two_phase(9, vec![]);
        assert_eq!(compile(&sc).ops, compile(&sc).ops);
    }

    #[test]
    fn phase_spans_cover_the_stream() {
        let c = compile(&two_phase(1, vec![]));
        assert_eq!(c.phases.len(), 2);
        assert_eq!(c.phases[0].start, 0);
        assert_eq!(c.phases[0].end, c.phases[1].start);
        assert_eq!(c.phases[1].end, c.ops.len());
        assert_eq!(c.ops.len(), 5_000);
    }

    #[test]
    fn non_insert_ops_target_live_keys() {
        // Replay the stream against a model set: every read/update/delete
        // must hit a key that is live at that point.
        let c = compile(&two_phase(3, vec![]));
        let mut live = std::collections::HashSet::new();
        for op in &c.ops {
            match *op {
                ScenarioOp::Insert(k, _) => {
                    live.insert(k);
                }
                ScenarioOp::Read(k) | ScenarioOp::Update(k, _) | ScenarioOp::Scan(k) => {
                    assert!(live.contains(&k), "victim {k} not live");
                }
                ScenarioOp::Delete(k) => {
                    assert!(live.remove(&k), "deleted {k} not live");
                }
            }
        }
    }

    #[test]
    fn reload_splices_a_sorted_burst() {
        let c = compile(&two_phase(5, vec![Event::BulkReload { at: 2_500, n: 500 }]));
        assert!(c.ops.len() > 5_400, "burst missing: {}", c.ops.len());
        // Find the longest run of consecutive ascending inserts — the
        // spliced batch is sorted and at least ~500 long (minus dedup).
        let mut best = 0usize;
        let mut run = 0usize;
        let mut last: Option<Key> = None;
        for op in &c.ops {
            match *op {
                ScenarioOp::Insert(k, _) if last.is_none_or(|p| p < k) => {
                    run += 1;
                    last = Some(k);
                }
                ScenarioOp::Insert(k, _) => {
                    best = best.max(run);
                    run = 1;
                    last = Some(k);
                }
                _ => {
                    best = best.max(run);
                    run = 0;
                    last = None;
                }
            }
        }
        best = best.max(run);
        assert!(best >= 400, "no sorted burst found (best run {best})");
    }

    #[test]
    fn storm_concentrates_on_few_keys() {
        let c = compile(&two_phase(
            7,
            vec![Event::HotKeyStorm {
                at: 2_500,
                ops: 800,
                keys: 4,
            }],
        ));
        // The storm window (declared offsets 2500..3300 == op indices here,
        // since no reload splices) should touch at most 4 distinct keys.
        let mut touched = std::collections::HashSet::new();
        for op in &c.ops[2_500..3_300] {
            match *op {
                ScenarioOp::Read(k) | ScenarioOp::Update(k, _) => {
                    touched.insert(k);
                }
                other => panic!("storm emitted {other:?}"),
            }
        }
        assert!(!touched.is_empty() && touched.len() <= 4, "{touched:?}");
    }

    #[test]
    fn ramp_weight_is_monotone_and_bounded() {
        let ramp = 1_000;
        let mut prev = 0.0;
        for i in 0..ramp {
            let w = ramp_weight(i, ramp);
            assert!((0.0..=1.0).contains(&w));
            assert!(w >= prev);
            prev = w;
        }
        assert!(ramp_weight(0, ramp) < 0.01);
        assert!(ramp_weight(ramp - 1, ramp) > 0.99);
        assert_eq!(ramp_weight(5, 0), 1.0);
    }
}
