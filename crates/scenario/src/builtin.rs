//! The built-in scenario battery.
//!
//! Each builder takes a `scale` — roughly the ops of one phase — so tests
//! replay small instances while the bench runs full-size ones. All four
//! scenarios plus the stationary control share the same construction so
//! "drift fires more remaps than stationary" is an apples-to-apples
//! comparison (identical op counts and mixes, different distributions).

use crate::dsl::{Event, OpMix, Phase, Scenario};
use ycsb::KeyDist;

fn phase(name: &str, dist: KeyDist, mix: OpMix, ops: usize, ramp: usize) -> Phase {
    Phase {
        name: name.to_string(),
        dist,
        mix,
        ops,
        ramp,
    }
}

/// The serve-phase mix shared by the drift scenario and its control.
fn drift_mix() -> OpMix {
    OpMix {
        insert: 70,
        read: 20,
        scan: 10,
        ..OpMix::default()
    }
}

/// MM -> TX drift: a map-like warmup, then the distribution ramps into an
/// advancing taxi clock. Because the warmup trained the structure on a key
/// region the serve phase abandons, every serve-phase TX key lands in
/// territory the index has never seen — the serve phase should fire
/// visibly more maintenance than the shape-identical no-shift
/// [`stationary_control`].
pub fn mm_to_tx_drift(scale: usize) -> Scenario {
    Scenario {
        name: "mm-to-tx-drift".to_string(),
        seed: 0xD21F7,
        phases: vec![
            phase("warmup", KeyDist::Mm, OpMix::insert_only(), scale, 0),
            phase(
                "serve",
                KeyDist::Tx,
                drift_mix(),
                scale * 2,
                (scale / 2).max(1),
            ),
        ],
        events: vec![],
    }
}

/// No-shift control for [`mm_to_tx_drift`]: the serve phase is *identical*
/// (same TX distribution, mix, length, and seed), but the warmup already
/// drew from the same taxi stream, so serve-phase keys arrive in regions
/// the structure has trained on. Compare the two scenarios' **serve-phase**
/// maintenance deltas: the difference is the cost of the distribution
/// shift itself, with the serve workload held fixed.
pub fn stationary_control(scale: usize) -> Scenario {
    Scenario {
        name: "stationary-control".to_string(),
        seed: 0xD21F7,
        phases: vec![
            phase("warmup", KeyDist::Tx, OpMix::insert_only(), scale, 0),
            phase("serve", KeyDist::Tx, drift_mix(), scale * 2, 0),
        ],
        events: vec![],
    }
}

/// Hot-key storm: a Zipf load phase, then a mixed serve phase interrupted
/// by a storm that hammers 8 live keys.
pub fn hot_key_storm(scale: usize) -> Scenario {
    Scenario {
        name: "hot-key-storm".to_string(),
        seed: 0x5709,
        phases: vec![
            phase(
                "load",
                KeyDist::Zipf { theta: 0.99 },
                OpMix::insert_only(),
                scale,
                0,
            ),
            phase(
                "serve",
                KeyDist::Zipf { theta: 0.99 },
                OpMix {
                    insert: 20,
                    read: 50,
                    update: 30,
                    ..OpMix::default()
                },
                scale * 2,
                0,
            ),
        ],
        events: vec![Event::HotKeyStorm {
            at: scale + scale / 2,
            ops: (scale / 2).max(1),
            keys: 8,
        }],
    }
}

/// Delete-heavy shrink: fill uniformly, then an 80%-delete phase drains
/// the structure (firing the shrink counters), and a bulk reload splices
/// a sorted batch back in.
pub fn delete_heavy_shrink(scale: usize) -> Scenario {
    Scenario {
        name: "delete-heavy-shrink".to_string(),
        seed: 0xDE1E7E,
        phases: vec![
            phase("fill", KeyDist::Uniform, OpMix::insert_only(), scale, 0),
            phase(
                "drain",
                KeyDist::Uniform,
                OpMix {
                    read: 20,
                    delete: 80,
                    ..OpMix::default()
                },
                scale * 2,
                0,
            ),
        ],
        events: vec![Event::BulkReload {
            at: scale * 5 / 2,
            n: (scale / 4).max(1),
        }],
    }
}

/// Every built-in scenario (the drift battery the differential tests and
/// the CI suite replay), excluding the stationary control.
pub fn all(scale: usize) -> Vec<Scenario> {
    vec![
        mm_to_tx_drift(scale),
        hot_key_storm(scale),
        delete_heavy_shrink(scale),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_validate_at_many_scales() {
        for scale in [16, 100, 1_000, 10_000] {
            for sc in all(scale)
                .into_iter()
                .chain(std::iter::once(stationary_control(scale)))
            {
                sc.validate().unwrap_or_else(|e| {
                    panic!("{} at scale {scale}: {e}", sc.name);
                });
            }
        }
    }

    #[test]
    fn drift_and_control_are_shape_identical() {
        let d = mm_to_tx_drift(1_000);
        let c = stationary_control(1_000);
        assert_eq!(d.total_ops(), c.total_ops());
        assert_eq!(d.seed, c.seed);
        for (pd, pc) in d.phases.iter().zip(&c.phases) {
            assert_eq!(pd.ops, pc.ops);
            assert_eq!(pd.mix, pc.mix);
        }
    }

    #[test]
    fn builtins_roundtrip_through_the_dsl() {
        for sc in all(500) {
            let text = sc.to_text();
            assert_eq!(Scenario::parse(&text).expect("parse"), sc, "{text}");
        }
    }
}
