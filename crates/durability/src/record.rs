//! On-disk WAL framing: a fixed 24-byte log header followed by
//! length-prefixed, CRC64-protected records with monotonic sequence numbers.
//!
//! ```text
//! log    := header record*
//! header := magic "DYWAL1\0\0" (8) | base_seq u64 | crc64(magic ‖ base_seq) u64
//! record := len u32 | crc64(payload) u64 | payload
//! payload:= seq u64 | op u8 | key u64 | value u64          (25 bytes)
//! ```
//!
//! All integers are little-endian. `len` is the payload length and must be
//! [`PAYLOAD_LEN`] for the current record version; any other value is treated
//! as corruption. The first record's `seq` must equal the header's
//! `base_seq` and every subsequent record must increment it by exactly one —
//! a gap or repeat marks the log invalid from that point on.
//!
//! Decoders distinguish a **torn** suffix (clean EOF mid-frame: the expected
//! outcome of a crash during an append) from a **corrupt** one (CRC
//! mismatch, bad length, bad op, sequence break: bit rot or a misdirected
//! write). Recovery truncates at the first record that is either.

use crate::crc64::Crc64;
use index_traits::{Key, Value};

/// Monotonic per-log sequence number. The first record of a log carries the
/// header's `base_seq`; group commit acknowledges a write once every record
/// up to and including its sequence number is durable.
pub type Seq = u64;

/// File magic opening every WAL segment.
pub const WAL_MAGIC: [u8; 8] = *b"DYWAL1\0\0";

/// Encoded size of the log header (magic + base sequence + CRC64).
pub const HEADER_LEN: usize = 8 + 8 + 8;

/// Payload size of a key-value record (seq + op + key + value).
pub const PAYLOAD_LEN: usize = 8 + 1 + 8 + 8;

/// Full encoded size of one record (length prefix + CRC + payload).
pub const RECORD_LEN: usize = 4 + 8 + PAYLOAD_LEN;

/// Logged operation kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalOp {
    /// Insert or update `key` with the record's value.
    Put,
    /// Remove `key` (the record's value field is zero and ignored).
    Delete,
}

impl WalOp {
    fn code(self) -> u8 {
        match self {
            WalOp::Put => 1,
            WalOp::Delete => 2,
        }
    }

    fn from_code(code: u8) -> Option<WalOp> {
        match code {
            1 => Some(WalOp::Put),
            2 => Some(WalOp::Delete),
            _ => None,
        }
    }
}

/// One decoded record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Record {
    /// Monotonic sequence number.
    pub seq: Seq,
    /// Operation kind.
    pub op: WalOp,
    /// Key the operation applies to.
    pub key: Key,
    /// Value for [`WalOp::Put`]; zero for deletes.
    pub value: Value,
}

/// Encodes the 24-byte log header for a segment whose first record will
/// carry sequence number `base_seq`.
pub fn encode_header(base_seq: Seq) -> [u8; HEADER_LEN] {
    let mut out = [0u8; HEADER_LEN];
    out[..8].copy_from_slice(&WAL_MAGIC);
    out[8..16].copy_from_slice(&base_seq.to_le_bytes());
    let mut crc = Crc64::new();
    crc.update(&out[..16]);
    out[16..24].copy_from_slice(&crc.finalize().to_le_bytes());
    out
}

/// Appends the encoded frame for one record to `out`.
pub fn encode_record(seq: Seq, op: WalOp, key: Key, value: Value, out: &mut Vec<u8>) {
    let mut payload = [0u8; PAYLOAD_LEN];
    payload[..8].copy_from_slice(&seq.to_le_bytes());
    payload[8] = op.code();
    payload[9..17].copy_from_slice(&key.to_le_bytes());
    payload[17..25].copy_from_slice(&value.to_le_bytes());
    let mut crc = Crc64::new();
    crc.update(&payload);
    // justified: PAYLOAD_LEN is the compile-time record size (25), far
    // inside the u32 length field.
    out.extend_from_slice(&(PAYLOAD_LEN as u32).to_le_bytes());
    out.extend_from_slice(&crc.finalize().to_le_bytes());
    out.extend_from_slice(&payload);
}

/// Outcome of decoding one frame from the head of a byte slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decoded {
    /// A full, CRC-clean record; the frame occupied [`RECORD_LEN`] bytes.
    Complete(Record),
    /// The slice ends mid-frame — the torn tail a crash during an append
    /// leaves behind. Recovery truncates here silently.
    Torn,
    /// The frame is structurally invalid (bad length, CRC mismatch, unknown
    /// op). Recovery truncates here and reports the reason.
    Corrupt(&'static str),
}

/// Decodes the frame at the head of `buf`.
pub fn decode_record(buf: &[u8]) -> Decoded {
    if buf.len() < 4 {
        return Decoded::Torn;
    }
    // invariant: the slice is 4 bytes by the length check above.
    let len = u32::from_le_bytes(buf[..4].try_into().expect("fixed slice")) as usize;
    if len != PAYLOAD_LEN {
        return Decoded::Corrupt("bad payload length");
    }
    if buf.len() < RECORD_LEN {
        return Decoded::Torn;
    }
    // invariant: the slice is 8 bytes by the RECORD_LEN check above.
    let want = u64::from_le_bytes(buf[4..12].try_into().expect("fixed slice"));
    let payload = &buf[12..RECORD_LEN];
    let mut crc = Crc64::new();
    crc.update(payload);
    if crc.finalize() != want {
        return Decoded::Corrupt("record CRC mismatch");
    }
    // invariant: payload is PAYLOAD_LEN bytes; all subslices are in range.
    let seq = u64::from_le_bytes(payload[..8].try_into().expect("fixed slice"));
    let Some(op) = WalOp::from_code(payload[8]) else {
        return Decoded::Corrupt("unknown op code");
    };
    // invariant: payload is PAYLOAD_LEN bytes; all subslices are in range.
    let key = u64::from_le_bytes(payload[9..17].try_into().expect("fixed slice"));
    // invariant: payload is PAYLOAD_LEN bytes; all subslices are in range.
    let value = u64::from_le_bytes(payload[17..25].try_into().expect("fixed slice"));
    Decoded::Complete(Record {
        seq,
        op,
        key,
        value,
    })
}

/// Outcome of decoding a log header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodedHeader {
    /// A valid header carrying the segment's base sequence number.
    Complete(Seq),
    /// The slice ends inside the header.
    Torn,
    /// Bad magic or CRC mismatch.
    Corrupt(&'static str),
}

/// Decodes the header at the head of `buf`.
pub fn decode_header(buf: &[u8]) -> DecodedHeader {
    if buf.len() < HEADER_LEN {
        return DecodedHeader::Torn;
    }
    if buf[..8] != WAL_MAGIC {
        return DecodedHeader::Corrupt("bad WAL magic");
    }
    let mut crc = Crc64::new();
    crc.update(&buf[..16]);
    // invariant: the slice is HEADER_LEN bytes by the length check above.
    let want = u64::from_le_bytes(buf[16..24].try_into().expect("fixed slice"));
    if crc.finalize() != want {
        return DecodedHeader::Corrupt("header CRC mismatch");
    }
    // invariant: the slice is HEADER_LEN bytes by the length check above.
    DecodedHeader::Complete(u64::from_le_bytes(
        buf[8..16].try_into().expect("fixed slice"),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_roundtrip() {
        let mut buf = Vec::new();
        encode_record(7, WalOp::Put, 0xDEAD_BEEF, 42, &mut buf);
        assert_eq!(buf.len(), RECORD_LEN);
        let Decoded::Complete(rec) = decode_record(&buf) else {
            panic!("expected complete record");
        };
        assert_eq!(rec.seq, 7);
        assert_eq!(rec.op, WalOp::Put);
        assert_eq!(rec.key, 0xDEAD_BEEF);
        assert_eq!(rec.value, 42);
    }

    #[test]
    fn delete_roundtrip() {
        let mut buf = Vec::new();
        encode_record(1, WalOp::Delete, 9, 0, &mut buf);
        assert_eq!(
            decode_record(&buf),
            Decoded::Complete(Record {
                seq: 1,
                op: WalOp::Delete,
                key: 9,
                value: 0
            })
        );
    }

    #[test]
    fn every_truncation_is_torn() {
        let mut buf = Vec::new();
        encode_record(3, WalOp::Put, 11, 22, &mut buf);
        for cut in 0..RECORD_LEN {
            assert_eq!(decode_record(&buf[..cut]), Decoded::Torn, "cut at {cut}");
        }
    }

    #[test]
    fn every_bit_flip_is_corrupt() {
        let mut buf = Vec::new();
        encode_record(3, WalOp::Put, 11, 22, &mut buf);
        for byte in 0..RECORD_LEN {
            for bit in 0..8 {
                let mut tampered = buf.clone();
                tampered[byte] ^= 1 << bit;
                assert!(
                    matches!(decode_record(&tampered), Decoded::Corrupt(_)),
                    "flip at {byte}:{bit} not reported corrupt"
                );
            }
        }
    }

    #[test]
    fn header_roundtrip_and_corruption() {
        let h = encode_header(123);
        assert_eq!(decode_header(&h), DecodedHeader::Complete(123));
        assert_eq!(decode_header(&h[..HEADER_LEN - 1]), DecodedHeader::Torn);
        let mut bad = h;
        bad[9] ^= 0x40;
        assert!(matches!(decode_header(&bad), DecodedHeader::Corrupt(_)));
        let mut bad_magic = h;
        bad_magic[0] ^= 0xFF;
        assert!(matches!(
            decode_header(&bad_magic),
            DecodedHeader::Corrupt(_)
        ));
    }
}
