//! Deterministic crash-point and corruption injection for WAL storage.
//!
//! [`FailpointWriter`] wraps any [`WalStorage`] and manipulates the byte
//! stream at an exact cumulative offset: [`CrashPlan::CutAt`] truncates the
//! stream there (modelling a crash where the tail never reached the device)
//! and fails every subsequent write and sync, while [`CrashPlan::FlipBit`]
//! silently corrupts one bit in flight (modelling bit rot or a misdirected
//! write) without failing anything. Together they let recovery be exercised
//! at every byte boundary of a log.

use crate::wal::WalStorage;
use std::io;

/// What the failpoint does to the byte stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPlan {
    /// Pass everything through untouched.
    None,
    /// Persist exactly `offset` bytes of the cumulative stream, then fail:
    /// the write that crosses the offset is truncated to the surviving
    /// prefix (a torn write) and returns an error, as does every later
    /// write and sync. Acks gated on [`crate::Wal::sync`] therefore never
    /// release for records past the cut.
    CutAt(u64),
    /// Flip bit `bit` (0–7) of the byte at cumulative stream `offset` while
    /// writing it. Writes and syncs succeed — the corruption is only
    /// discoverable at recovery time via the record CRC.
    FlipBit {
        /// Cumulative stream offset of the byte to corrupt.
        offset: u64,
        /// Bit index within the byte (0 = least significant).
        bit: u8,
    },
}

/// Error message carried by injected failures, so tests can tell an
/// injected crash apart from a real I/O error.
pub const CRASH_MSG: &str = "failpoint: injected crash";

/// A [`WalStorage`] wrapper that executes a [`CrashPlan`].
///
/// Offsets are measured over the *cumulative* stream of bytes handed to the
/// wrapper, including bytes re-written after a [`WalStorage::reset`], so a
/// plan stays meaningful across log rotations.
#[derive(Debug)]
pub struct FailpointWriter<S> {
    inner: S,
    plan: CrashPlan,
    written: u64,
    tripped: bool,
}

impl<S: WalStorage> FailpointWriter<S> {
    /// Wraps `inner` with the given plan.
    pub fn new(inner: S, plan: CrashPlan) -> Self {
        FailpointWriter {
            inner,
            plan,
            written: 0,
            tripped: false,
        }
    }

    /// Whether the crash point has been hit.
    pub fn tripped(&self) -> bool {
        self.tripped
    }

    /// Total bytes offered to the wrapper so far (including bytes dropped
    /// past a cut).
    pub fn offered(&self) -> u64 {
        self.written
    }

    /// Unwraps the inner storage.
    pub fn into_inner(self) -> S {
        self.inner
    }

    fn crash_err() -> io::Error {
        io::Error::new(io::ErrorKind::BrokenPipe, CRASH_MSG)
    }
}

impl<S: WalStorage> WalStorage for FailpointWriter<S> {
    fn append(&mut self, buf: &[u8]) -> io::Result<()> {
        let start = self.written;
        self.written += buf.len() as u64;
        if self.tripped {
            return Err(Self::crash_err());
        }
        match self.plan {
            CrashPlan::None => self.inner.append(buf),
            CrashPlan::CutAt(cut) => {
                if start >= cut {
                    self.tripped = true;
                    Err(Self::crash_err())
                } else if start + buf.len() as u64 > cut {
                    // Torn write: only the prefix up to the cut survives.
                    self.tripped = true;
                    self.inner.append(&buf[..(cut - start) as usize])?;
                    Err(Self::crash_err())
                } else {
                    self.inner.append(buf)
                }
            }
            CrashPlan::FlipBit { offset, bit } => {
                if offset >= start && offset < start + buf.len() as u64 {
                    let mut tampered = buf.to_vec();
                    tampered[(offset - start) as usize] ^= 1 << (bit & 7);
                    self.inner.append(&tampered)
                } else {
                    self.inner.append(buf)
                }
            }
        }
    }

    fn sync(&mut self) -> io::Result<()> {
        if self.tripped {
            return Err(Self::crash_err());
        }
        self.inner.sync()
    }

    fn reset(&mut self, header: &[u8]) -> io::Result<()> {
        if self.tripped {
            self.written += header.len() as u64;
            return Err(Self::crash_err());
        }
        // A reset rewinds the file but not the cumulative stream: route the
        // header through `append` accounting so cut/flip offsets keep
        // advancing monotonically across rotations.
        self.inner.reset(&[])?;
        self.append(header)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::VecStorage;

    #[test]
    fn cut_truncates_and_fails_afterwards() {
        let store = VecStorage::new();
        let bytes = store.handle();
        let mut w = FailpointWriter::new(store, CrashPlan::CutAt(10));
        w.append(&[1; 8]).expect("below the cut");
        assert!(w.append(&[2; 8]).is_err(), "write crossing the cut fails");
        assert!(w.tripped());
        assert!(w.sync().is_err(), "sync after the cut fails");
        assert!(w.append(&[3; 8]).is_err(), "writes after the cut fail");
        let buf = bytes.lock().unwrap().clone();
        assert_eq!(buf, vec![1, 1, 1, 1, 1, 1, 1, 1, 2, 2]);
    }

    #[test]
    fn cut_on_exact_boundary_keeps_whole_write() {
        let store = VecStorage::new();
        let bytes = store.handle();
        let mut w = FailpointWriter::new(store, CrashPlan::CutAt(8));
        w.append(&[7; 8]).expect("exactly fills the budget");
        assert!(!w.tripped());
        w.sync().expect("sync before the cut");
        assert!(w.append(&[8; 1]).is_err());
        assert_eq!(bytes.lock().unwrap().len(), 8);
    }

    #[test]
    fn flip_bit_corrupts_silently() {
        let store = VecStorage::new();
        let bytes = store.handle();
        let mut w = FailpointWriter::new(store, CrashPlan::FlipBit { offset: 5, bit: 3 });
        w.append(&[0; 4]).expect("clean");
        w.append(&[0; 4]).expect("tampered but successful");
        w.sync().expect("sync still succeeds");
        let buf = bytes.lock().unwrap().clone();
        assert_eq!(buf, vec![0, 0, 0, 0, 0, 1 << 3, 0, 0]);
    }

    #[test]
    fn offsets_accumulate_across_reset() {
        let store = VecStorage::new();
        let bytes = store.handle();
        let mut w = FailpointWriter::new(store, CrashPlan::CutAt(6));
        w.append(&[1; 4]).expect("clean");
        assert!(w.reset(&[9; 4]).is_err(), "header crosses the cut");
        let buf = bytes.lock().unwrap().clone();
        assert_eq!(buf, vec![9, 9], "reset cleared, then torn header prefix");
    }
}
