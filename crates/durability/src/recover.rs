//! Crash recovery: scan a log's byte image, replay the valid prefix, and
//! repair the file by truncating at the first torn or corrupt record.
//!
//! The scanner enforces the full framing contract of [`crate::record`]: a
//! valid header, then records whose sequence numbers count up from the
//! header's base with no gap or repeat. The first violation — whether a
//! clean torn tail from a crashed append or CRC-detected corruption —
//! marks the end of the valid prefix; nothing after it is trusted, because
//! a log is only meaningful as an unbroken chain of acknowledged writes.

use crate::record::{
    decode_header, decode_record, encode_header, Decoded, DecodedHeader, Record, Seq, HEADER_LEN,
    RECORD_LEN,
};
use std::fs::{File, OpenOptions};
use std::io;
use std::path::Path;

/// Where and why a scan stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Damage {
    /// Byte offset of the first invalid frame (= length of the valid
    /// prefix).
    pub offset: u64,
    /// Human-readable reason.
    pub reason: &'static str,
    /// `true` for a torn tail (clean EOF mid-frame, the expected crash
    /// artifact), `false` for structural corruption (CRC mismatch, bad
    /// length or op, sequence break).
    pub torn: bool,
}

/// Result of scanning a log image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanReport {
    /// Sequence number the next appended record must carry.
    pub next_seq: Seq,
    /// Records in the valid prefix (all passed to the visitor).
    pub records: u64,
    /// Byte length of the valid prefix (header included); the file should
    /// be truncated to this length before appending resumes.
    pub valid_len: u64,
    /// `None` for a clean log (or a brand-new empty one); otherwise where
    /// and why the scan stopped.
    pub damage: Option<Damage>,
}

/// Scans `buf` as a WAL image, calling `apply` for every record in the
/// valid prefix in order.
///
/// An empty `buf` is a fresh log: no damage, `next_seq` 1, `valid_len` 0.
/// A torn or corrupt *header* yields `valid_len` 0 with damage — the whole
/// log is untrusted and sequence numbering restarts at 1.
pub fn scan_bytes(buf: &[u8], mut apply: impl FnMut(Record)) -> ScanReport {
    if buf.is_empty() {
        return ScanReport {
            next_seq: 1,
            records: 0,
            valid_len: 0,
            damage: None,
        };
    }
    let base = match decode_header(buf) {
        DecodedHeader::Complete(base) => base,
        DecodedHeader::Torn => {
            return ScanReport {
                next_seq: 1,
                records: 0,
                valid_len: 0,
                damage: Some(Damage {
                    offset: 0,
                    reason: "torn header",
                    torn: true,
                }),
            }
        }
        DecodedHeader::Corrupt(reason) => {
            return ScanReport {
                next_seq: 1,
                records: 0,
                valid_len: 0,
                damage: Some(Damage {
                    offset: 0,
                    reason,
                    torn: false,
                }),
            }
        }
    };
    let mut offset = HEADER_LEN;
    let mut expected = base;
    let mut records = 0u64;
    let damage = loop {
        if offset == buf.len() {
            break None;
        }
        match decode_record(&buf[offset..]) {
            Decoded::Complete(rec) => {
                if rec.seq != expected {
                    break Some(Damage {
                        offset: offset as u64,
                        reason: "sequence break",
                        torn: false,
                    });
                }
                apply(rec);
                expected += 1;
                records += 1;
                offset += RECORD_LEN;
            }
            Decoded::Torn => {
                break Some(Damage {
                    offset: offset as u64,
                    reason: "torn record",
                    torn: true,
                })
            }
            Decoded::Corrupt(reason) => {
                break Some(Damage {
                    offset: offset as u64,
                    reason,
                    torn: false,
                })
            }
        }
    };
    ScanReport {
        next_seq: expected,
        records,
        valid_len: offset as u64,
        damage,
    }
}

/// A log file after recovery: repaired, replayed, and positioned at its
/// end, ready to hand to [`crate::Wal::start`].
#[derive(Debug)]
pub struct RecoveredLog {
    /// The repaired file, positioned at the end of the valid prefix.
    pub file: File,
    /// Sequence number for the next append.
    pub next_seq: Seq,
    /// Records replayed through the visitor.
    pub replayed: u64,
    /// Bytes discarded past the valid prefix (0 for a clean log).
    pub truncated_bytes: u64,
    /// Damage found by the scan, if any (already repaired).
    pub damage: Option<Damage>,
}

/// Opens (or creates) the log at `path`, replays its valid prefix through
/// `apply`, and repairs the file: the tail past the first torn or corrupt
/// record is truncated, and a missing or damaged header is replaced by a
/// fresh one (base sequence 1) over an empty log.
///
/// # Errors
///
/// Propagates I/O errors from opening, reading, truncating, or syncing.
pub fn recover_log_file(path: &Path, apply: impl FnMut(Record)) -> io::Result<RecoveredLog> {
    use std::io::{Read, Seek, SeekFrom, Write};
    let mut file = OpenOptions::new()
        .read(true)
        .write(true)
        .create(true)
        .truncate(false)
        .open(path)?;
    let mut buf = Vec::new();
    file.read_to_end(&mut buf)?;
    let report = scan_bytes(&buf, apply);
    let truncated_bytes = buf.len() as u64 - report.valid_len;
    if report.valid_len == 0 {
        // Fresh log, or a destroyed header: start over with a clean header.
        file.set_len(0)?;
        file.seek(SeekFrom::Start(0))?;
        file.write_all(&encode_header(report.next_seq))?;
        file.sync_data()?;
    } else if truncated_bytes > 0 {
        file.set_len(report.valid_len)?;
        file.sync_data()?;
        file.seek(SeekFrom::End(0))?;
    }
    Ok(RecoveredLog {
        file,
        next_seq: report.next_seq,
        replayed: report.records,
        truncated_bytes,
        damage: report.damage,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{encode_record, WalOp};

    fn build_log(base: Seq, n: u64) -> Vec<u8> {
        let mut buf = encode_header(base).to_vec();
        for i in 0..n {
            encode_record(base + i, WalOp::Put, i, i * 10, &mut buf);
        }
        buf
    }

    #[test]
    fn clean_log_replays_everything() {
        let buf = build_log(1, 5);
        let mut seen = Vec::new();
        let report = scan_bytes(&buf, |r| seen.push((r.seq, r.key, r.value)));
        assert_eq!(report.records, 5);
        assert_eq!(report.next_seq, 6);
        assert_eq!(report.valid_len, buf.len() as u64);
        assert_eq!(report.damage, None);
        assert_eq!(seen[0], (1, 0, 0));
        assert_eq!(seen[4], (5, 4, 40));
    }

    #[test]
    fn empty_image_is_a_fresh_log() {
        let report = scan_bytes(&[], |_| panic!("no records"));
        assert_eq!(report.next_seq, 1);
        assert_eq!(report.valid_len, 0);
        assert_eq!(report.damage, None);
    }

    #[test]
    fn truncation_at_every_byte_keeps_exactly_the_whole_records() {
        let n = 4u64;
        let buf = build_log(1, n);
        for cut in 0..=buf.len() {
            let mut count = 0u64;
            let report = scan_bytes(&buf[..cut], |_| count += 1);
            if cut < HEADER_LEN {
                assert_eq!(report.valid_len, 0, "cut {cut}");
                if cut > 0 {
                    assert!(report.damage.is_some(), "cut {cut}");
                }
                continue;
            }
            let whole = (cut - HEADER_LEN) / RECORD_LEN;
            assert_eq!(count, whole as u64, "cut {cut}");
            assert_eq!(report.next_seq, 1 + whole as u64, "cut {cut}");
            assert_eq!(
                report.valid_len,
                (HEADER_LEN + whole * RECORD_LEN) as u64,
                "cut {cut}"
            );
            let boundary = (cut - HEADER_LEN).is_multiple_of(RECORD_LEN);
            if boundary {
                assert_eq!(report.damage, None, "cut {cut}");
            } else {
                let d = report.damage.expect("torn damage");
                assert!(d.torn, "cut {cut}");
                assert_eq!(d.offset, report.valid_len, "cut {cut}");
            }
        }
    }

    #[test]
    fn corrupt_record_stops_the_scan() {
        let mut buf = build_log(1, 3);
        // Flip a payload bit in the second record.
        let off = HEADER_LEN + RECORD_LEN + 20;
        buf[off] ^= 1;
        let mut count = 0;
        let report = scan_bytes(&buf, |_| count += 1);
        assert_eq!(count, 1);
        assert_eq!(report.next_seq, 2);
        assert_eq!(report.valid_len, (HEADER_LEN + RECORD_LEN) as u64);
        let d = report.damage.expect("corrupt damage");
        assert!(!d.torn);
    }

    #[test]
    fn sequence_gap_is_corruption() {
        let mut buf = encode_header(1).to_vec();
        encode_record(1, WalOp::Put, 1, 1, &mut buf);
        encode_record(3, WalOp::Put, 3, 3, &mut buf); // gap: 2 missing
        let report = scan_bytes(&buf, |_| {});
        assert_eq!(report.records, 1);
        let d = report.damage.expect("gap damage");
        assert_eq!(d.reason, "sequence break");
        assert!(!d.torn);
    }

    #[test]
    fn damaged_header_invalidates_the_log() {
        let mut buf = build_log(7, 2);
        buf[3] ^= 0x10;
        let report = scan_bytes(&buf, |_| panic!("untrusted log must not replay"));
        assert_eq!(report.valid_len, 0);
        assert_eq!(report.next_seq, 1);
        assert!(report.damage.is_some());
    }

    #[test]
    fn nonbase_start_sequence_respected() {
        let buf = build_log(100, 3);
        let report = scan_bytes(&buf, |_| {});
        assert_eq!(report.records, 3);
        assert_eq!(report.next_seq, 103);
    }

    #[test]
    fn file_recovery_repairs_torn_tail() {
        let dir = std::env::temp_dir().join(format!(
            "durability-recover-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        let path = dir.join("torn.wal");
        let mut buf = build_log(1, 3);
        buf.truncate(buf.len() - 5); // torn third record
        std::fs::write(&path, &buf).expect("write image");
        let mut seen = Vec::new();
        let rec = recover_log_file(&path, |r| seen.push(r.seq)).expect("recover");
        assert_eq!(rec.replayed, 2);
        assert_eq!(rec.next_seq, 3);
        assert_eq!(rec.truncated_bytes, RECORD_LEN as u64 - 5);
        assert!(rec.damage.expect("torn").torn);
        assert_eq!(seen, vec![1, 2]);
        let on_disk = std::fs::metadata(&path).expect("stat").len();
        assert_eq!(on_disk, (HEADER_LEN + 2 * RECORD_LEN) as u64);
        // A second recovery sees a clean log.
        let rec2 = recover_log_file(&path, |_| {}).expect("recover again");
        assert_eq!(rec2.damage, None);
        assert_eq!(rec2.next_seq, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_recovery_creates_missing_log() {
        let dir = std::env::temp_dir().join(format!(
            "durability-fresh-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        let path = dir.join("fresh.wal");
        let rec = recover_log_file(&path, |_| panic!("empty")).expect("recover");
        assert_eq!(rec.next_seq, 1);
        assert_eq!(rec.replayed, 0);
        assert_eq!(
            std::fs::metadata(&path).expect("stat").len(),
            HEADER_LEN as u64
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
