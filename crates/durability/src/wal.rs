//! Group-commit write-ahead logging.
//!
//! Writers [`Wal::append`] records (a cheap in-memory enqueue that assigns
//! the next sequence number) and then block in [`Wal::sync`] until their
//! record is durable. A dedicated committer thread drains the queue in
//! batches, writes the encoded frames to the backing [`WalStorage`], issues
//! **one** fsync for the whole batch, and only then advances the durable
//! watermark that releases the waiting writers. Under concurrent load the
//! batch grows to cover every writer that arrived during the previous
//! fsync, amortizing the dominant cost of durability exactly as the
//! query/update tradeoff in *Dynamic Indexability* (Yi) prescribes for
//! write-optimized structures.
//!
//! Failure model: any storage error is **sticky** — once a write or sync
//! fails, every pending and future `sync` returns an error, so an
//! acknowledgement is never released for a record that did not reach the
//! device. [`Wal::crash`] flips the same switch deliberately, letting tests
//! kill the committer at a precise point (see [`crate::FailpointWriter`]).

use crate::record::{encode_header, encode_record, Seq, WalOp};
use index_traits::{Key, Value};
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;

/// Byte sink a WAL writes through. Implementations must make `sync`
/// durable: once it returns, every previously appended byte survives a
/// crash.
pub trait WalStorage: Send + 'static {
    /// Appends `buf` at the end of the log.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; a partial (torn) write may survive.
    fn append(&mut self, buf: &[u8]) -> io::Result<()>;

    /// Makes every appended byte durable.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    fn sync(&mut self) -> io::Result<()>;

    /// Truncates the log to zero bytes, writes `header`, and makes the
    /// result durable (log rotation after a checkpoint).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    fn reset(&mut self, header: &[u8]) -> io::Result<()>;
}

/// File-backed storage: `append` = buffered-free `write_all`, `sync` =
/// `sync_data`.
#[derive(Debug)]
pub struct FileStorage {
    file: std::fs::File,
}

impl FileStorage {
    /// Wraps a file positioned at the end of its valid contents (see
    /// [`crate::recover_log_file`]).
    pub fn new(file: std::fs::File) -> Self {
        FileStorage { file }
    }
}

impl WalStorage for FileStorage {
    fn append(&mut self, buf: &[u8]) -> io::Result<()> {
        use std::io::Write;
        self.file.write_all(buf)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    fn reset(&mut self, header: &[u8]) -> io::Result<()> {
        use std::io::{Seek, SeekFrom, Write};
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.file.write_all(header)?;
        self.file.sync_data()
    }
}

/// In-memory storage for tests: the written byte stream stays readable
/// through the shared handle after the `Wal` (or a simulated crash) is
/// gone. `sync` is a no-op — pair it with [`crate::FailpointWriter`] to
/// model lost tails.
#[derive(Debug, Default)]
pub struct VecStorage {
    buf: Arc<Mutex<Vec<u8>>>,
}

impl VecStorage {
    /// An empty in-memory log.
    pub fn new() -> Self {
        VecStorage::default()
    }

    /// Shared handle to the written bytes.
    pub fn handle(&self) -> Arc<Mutex<Vec<u8>>> {
        Arc::clone(&self.buf)
    }
}

impl WalStorage for VecStorage {
    fn append(&mut self, buf: &[u8]) -> io::Result<()> {
        self.buf
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .extend_from_slice(buf);
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        Ok(())
    }

    fn reset(&mut self, header: &[u8]) -> io::Result<()> {
        let mut b = self.buf.lock().unwrap_or_else(PoisonError::into_inner);
        b.clear();
        b.extend_from_slice(header);
        Ok(())
    }
}

/// Tuning knobs for a [`Wal`].
#[derive(Debug, Clone, Copy)]
pub struct WalOptions {
    /// Maximum queue items the committer drains per batch (and therefore
    /// per fsync). The default is effectively unbounded for realistic
    /// queues; benchmarks lower it to pin the batch size.
    pub max_batch_records: usize,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions {
            max_batch_records: 1024,
        }
    }
}

/// Always-on commit statistics (plain atomics, independent of the obs
/// `metrics` feature — the `wal_commit` bench reads these in default
/// builds, like the maintenance counters of the concurrent indexes).
#[derive(Debug, Default)]
struct StatsInner {
    batches: AtomicU64,
    records: AtomicU64,
    synced_bytes: AtomicU64,
    rotations: AtomicU64,
}

/// Snapshot of a WAL's commit statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalStats {
    /// Commit batches flushed (= fsync calls for record batches).
    pub batches: u64,
    /// Records made durable across all batches.
    pub records: u64,
    /// Payload bytes written to storage.
    pub synced_bytes: u64,
    /// Log rotations performed.
    pub rotations: u64,
}

impl WalStats {
    /// Mean records per commit batch (0 when no batch has been flushed).
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.records as f64 / self.batches as f64
        }
    }
}

enum QueueItem {
    Record { seq: Seq, frame: Vec<u8> },
    Rotate { base: Seq },
}

struct State {
    queue: Vec<QueueItem>,
    next_seq: Seq,
    durable_seq: Seq,
    rotate_tickets: u64,
    rotate_done: u64,
    error: Option<(io::ErrorKind, String)>,
    shutdown: bool,
    crash: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Wakes the committer when work arrives or the WAL shuts down.
    work: Condvar,
    /// Wakes writers when the durable watermark advances or an error lands.
    done: Condvar,
}

/// A group-commit write-ahead log over any [`WalStorage`].
///
/// Cloneable access is by `&self`; share a `Wal` across threads with `Arc`.
pub struct Wal<S: WalStorage> {
    shared: Arc<Shared>,
    stats: Arc<StatsInner>,
    committer: Option<JoinHandle<S>>,
}

impl<S: WalStorage> Wal<S> {
    /// Starts a WAL whose storage already holds a valid log (header
    /// present, positioned at the end); the first appended record receives
    /// sequence number `next_seq`.
    pub fn start(storage: S, next_seq: Seq, options: WalOptions) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: Vec::new(),
                next_seq,
                durable_seq: next_seq.saturating_sub(1),
                rotate_tickets: 0,
                rotate_done: 0,
                error: None,
                shutdown: false,
                crash: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let stats = Arc::new(StatsInner::default());
        let committer = {
            let shared = Arc::clone(&shared);
            let stats = Arc::clone(&stats);
            std::thread::spawn(move || committer_loop(&shared, &stats, storage, options))
        };
        Wal {
            shared,
            stats,
            committer: Some(committer),
        }
    }

    /// Creates a fresh log: truncates `storage`, writes a header with
    /// `base_seq`, and starts the committer.
    ///
    /// # Errors
    ///
    /// Propagates storage errors from writing the header.
    pub fn create(mut storage: S, base_seq: Seq, options: WalOptions) -> io::Result<Self> {
        storage.reset(&encode_header(base_seq))?;
        Ok(Self::start(storage, base_seq, options))
    }

    /// Enqueues one record and returns its sequence number. The record is
    /// **not durable** until [`Wal::sync`] returns for that sequence.
    ///
    /// # Errors
    ///
    /// Returns the sticky storage error if the WAL has already failed, or
    /// an error if it is shut down.
    pub fn append(&self, op: WalOp, key: Key, value: Value) -> io::Result<Seq> {
        let mut st = self.lock_state();
        if let Some((kind, msg)) = &st.error {
            return Err(io::Error::new(*kind, msg.clone()));
        }
        if st.shutdown || st.crash {
            return Err(io::Error::other("wal is closed"));
        }
        let seq = st.next_seq;
        st.next_seq += 1;
        let mut frame = Vec::with_capacity(crate::record::RECORD_LEN);
        encode_record(seq, op, key, value, &mut frame);
        st.queue.push(QueueItem::Record { seq, frame });
        obs::counter!("wal.appends").inc();
        self.shared.work.notify_one();
        Ok(seq)
    }

    /// Blocks until every record up to and including `seq` is durable.
    ///
    /// # Errors
    ///
    /// Returns the sticky storage error if the batch containing `seq`
    /// failed before it became durable — in which case the write was never
    /// acknowledged and must be considered lost.
    pub fn sync(&self, seq: Seq) -> io::Result<()> {
        let mut st = self.lock_state();
        loop {
            // Durable wins over sticky errors: a record whose batch
            // completed is acknowledged even if a later batch failed.
            if st.durable_seq >= seq {
                return Ok(());
            }
            if let Some((kind, msg)) = &st.error {
                return Err(io::Error::new(*kind, msg.clone()));
            }
            st = self
                .shared
                .done
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Blocks until everything appended so far is durable.
    ///
    /// # Errors
    ///
    /// As [`Wal::sync`].
    pub fn sync_all(&self) -> io::Result<()> {
        let last = {
            let st = self.lock_state();
            st.next_seq.saturating_sub(1)
        };
        self.sync(last)
    }

    /// Rotates the log after a checkpoint: truncates storage to a fresh
    /// header and declares every previously appended record
    /// checkpoint-covered (their pending [`Wal::sync`] calls release, since
    /// the data is durable in the checkpoint). Returns the new segment's
    /// base sequence; numbering continues monotonically.
    ///
    /// # Errors
    ///
    /// Returns the sticky storage error if rotation (or an earlier write)
    /// failed.
    pub fn rotate(&self) -> io::Result<Seq> {
        let (ticket, base) = {
            let mut st = self.lock_state();
            if let Some((kind, msg)) = &st.error {
                return Err(io::Error::new(*kind, msg.clone()));
            }
            if st.shutdown || st.crash {
                return Err(io::Error::other("wal is closed"));
            }
            let ticket = st.rotate_tickets;
            st.rotate_tickets += 1;
            let base = st.next_seq;
            st.queue.push(QueueItem::Rotate { base });
            (ticket, base)
        };
        self.shared.work.notify_one();
        let mut st = self.lock_state();
        loop {
            if st.rotate_done > ticket {
                return Ok(base);
            }
            if let Some((kind, msg)) = &st.error {
                return Err(io::Error::new(*kind, msg.clone()));
            }
            st = self
                .shared
                .done
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Simulates a crash: the committer stops immediately without flushing
    /// the queue, and every pending or future [`Wal::sync`] fails. Records
    /// already durable stay acknowledged.
    pub fn crash(&self) {
        {
            let mut st = self.lock_state();
            st.crash = true;
            if st.error.is_none() {
                st.error = Some((
                    io::ErrorKind::BrokenPipe,
                    "wal crashed (simulated)".to_string(),
                ));
            }
        }
        self.shared.work.notify_all();
        self.shared.done.notify_all();
    }

    /// The sequence number the next [`Wal::append`] will receive.
    pub fn next_seq(&self) -> Seq {
        self.lock_state().next_seq
    }

    /// The highest acknowledged (durable) sequence number.
    pub fn durable_seq(&self) -> Seq {
        self.lock_state().durable_seq
    }

    /// Commit statistics so far.
    pub fn stats(&self) -> WalStats {
        WalStats {
            // relaxed: independent monotone statistics counters; readers
            // tolerate a momentary lower bound and totals are exact once
            // the committer has quiesced.
            batches: self.stats.batches.load(Ordering::Relaxed),
            // relaxed: see above.
            records: self.stats.records.load(Ordering::Relaxed),
            // relaxed: see above.
            synced_bytes: self.stats.synced_bytes.load(Ordering::Relaxed),
            // relaxed: see above.
            rotations: self.stats.rotations.load(Ordering::Relaxed),
        }
    }

    /// Flushes everything, stops the committer, and returns the storage
    /// together with the final health of the log.
    pub fn close(mut self) -> (S, io::Result<()>) {
        {
            let mut st = self.lock_state();
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        // invariant: the committer handle is Some until close/drop, and the
        // committer thread does not panic (all errors are routed into the
        // sticky error state).
        let storage = self.committer.take().expect("committer present").join();
        let storage = match storage {
            Ok(s) => s,
            Err(p) => std::panic::resume_unwind(p),
        };
        let health = {
            let st = self.lock_state();
            match &st.error {
                Some((kind, msg)) => Err(io::Error::new(*kind, msg.clone())),
                None => Ok(()),
            }
        };
        (storage, health)
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, State> {
        self.shared
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<S: WalStorage> Drop for Wal<S> {
    fn drop(&mut self) {
        if let Some(handle) = self.committer.take() {
            {
                let mut st = self
                    .shared
                    .state
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                st.shutdown = true;
            }
            self.shared.work.notify_all();
            let _ = handle.join();
        }
    }
}

fn committer_loop<S: WalStorage>(
    shared: &Shared,
    stats: &StatsInner,
    mut storage: S,
    options: WalOptions,
) -> S {
    loop {
        let batch: Vec<QueueItem> = {
            let mut st = shared.state.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if st.crash {
                    return storage;
                }
                if !st.queue.is_empty() {
                    break;
                }
                if st.shutdown {
                    return storage;
                }
                st = shared.work.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
            let n = st.queue.len().min(options.max_batch_records.max(1));
            st.queue.drain(..n).collect()
        };

        // Apply the batch outside the lock: appends stay cheap while the
        // committer is at the device, which is what lets the next batch
        // grow (group commit).
        let mut high: Option<Seq> = None;
        let mut rotations_done = 0u64;
        let mut record_count = 0u64;
        let mut byte_count = 0u64;
        let mut failure: Option<io::Error> = None;
        for item in &batch {
            let step = match item {
                QueueItem::Record { seq, frame } => match storage.append(frame) {
                    Ok(()) => {
                        high = Some(*seq);
                        record_count += 1;
                        byte_count += frame.len() as u64;
                        Ok(())
                    }
                    Err(e) => Err(e),
                },
                QueueItem::Rotate { base } => {
                    match storage.reset(&encode_header(*base)) {
                        Ok(()) => {
                            // Everything below `base` is checkpoint-covered:
                            // release its waiters.
                            high = Some(base.saturating_sub(1));
                            rotations_done += 1;
                            Ok(())
                        }
                        Err(e) => Err(e),
                    }
                }
            };
            if let Err(e) = step {
                failure = Some(e);
                break;
            }
        }
        if failure.is_none() && record_count > 0 {
            let fsync_timer = obs::Timer::start(obs::histogram!("wal.fsync_ns"));
            let r = storage.sync();
            drop(fsync_timer);
            if let Err(e) = r {
                failure = Some(e);
            } else {
                obs::histogram!("wal.batch_records").record(record_count);
                obs::counter!("wal.batches").inc();
                // relaxed: independent monotone statistics counters (see
                // WalStats); no memory is published through them.
                stats.batches.fetch_add(1, Ordering::Relaxed);
                // relaxed: see above.
                stats.records.fetch_add(record_count, Ordering::Relaxed);
                // relaxed: see above.
                stats.synced_bytes.fetch_add(byte_count, Ordering::Relaxed);
            }
        }
        if failure.is_none() && rotations_done > 0 {
            // relaxed: independent monotone statistics counter.
            stats.rotations.fetch_add(rotations_done, Ordering::Relaxed);
        }

        let mut st = shared.state.lock().unwrap_or_else(PoisonError::into_inner);
        match failure {
            None => {
                if let Some(h) = high {
                    st.durable_seq = st.durable_seq.max(h);
                }
                st.rotate_done += rotations_done;
            }
            Some(e) => {
                if st.error.is_none() {
                    st.error = Some((e.kind(), e.to_string()));
                }
                shared.done.notify_all();
                return storage;
            }
        }
        shared.done.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{decode_header, DecodedHeader, HEADER_LEN, RECORD_LEN};

    fn read_bytes(handle: &Arc<Mutex<Vec<u8>>>) -> Vec<u8> {
        handle.lock().unwrap().clone()
    }

    #[test]
    fn append_sync_makes_records_durable() {
        let storage = VecStorage::new();
        let bytes = storage.handle();
        let wal = Wal::create(storage, 1, WalOptions::default()).expect("create");
        let s1 = wal.append(WalOp::Put, 10, 100).expect("append");
        let s2 = wal.append(WalOp::Put, 20, 200).expect("append");
        wal.sync(s2).expect("sync");
        assert_eq!((s1, s2), (1, 2));
        assert!(wal.durable_seq() >= 2);
        let buf = read_bytes(&bytes);
        assert_eq!(buf.len(), HEADER_LEN + 2 * RECORD_LEN);
        assert_eq!(decode_header(&buf), DecodedHeader::Complete(1));
        let (_s, health) = wal.close();
        health.expect("clean close");
    }

    #[test]
    fn close_flushes_pending_appends() {
        let storage = VecStorage::new();
        let bytes = storage.handle();
        let wal = Wal::create(storage, 1, WalOptions::default()).expect("create");
        for k in 0..50u64 {
            wal.append(WalOp::Put, k, k).expect("append");
        }
        let (_s, health) = wal.close();
        health.expect("clean close");
        assert_eq!(read_bytes(&bytes).len(), HEADER_LEN + 50 * RECORD_LEN);
    }

    #[test]
    fn group_commit_batches_concurrent_writers() {
        let storage = VecStorage::new();
        let wal = Arc::new(Wal::create(storage, 1, WalOptions::default()).expect("create"));
        let threads = 8;
        let per_thread = 200u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let wal = Arc::clone(&wal);
                s.spawn(move || {
                    for i in 0..per_thread {
                        let seq = wal.append(WalOp::Put, t * 10_000 + i, i).expect("append");
                        wal.sync(seq).expect("sync");
                    }
                });
            }
        });
        let stats = wal.stats();
        assert_eq!(stats.records, threads * per_thread);
        // With 8 threads racing one committer, at least some batches must
        // carry more than one record (the whole point of group commit).
        assert!(
            stats.batches < stats.records,
            "no batching: {} batches for {} records",
            stats.batches,
            stats.records
        );
    }

    #[test]
    fn max_batch_records_caps_batches() {
        let storage = VecStorage::new();
        let wal = Wal::create(
            storage,
            1,
            WalOptions {
                max_batch_records: 4,
            },
        )
        .expect("create");
        for k in 0..64u64 {
            wal.append(WalOp::Put, k, k).expect("append");
        }
        wal.sync_all().expect("sync");
        let stats = wal.stats();
        assert!(stats.batches >= 16, "batches {} < 16", stats.batches);
        let (_s, health) = wal.close();
        health.expect("clean close");
    }

    #[test]
    fn rotation_truncates_and_continues_sequence() {
        let storage = VecStorage::new();
        let bytes = storage.handle();
        let wal = Wal::create(storage, 1, WalOptions::default()).expect("create");
        for k in 0..10u64 {
            wal.append(WalOp::Put, k, k).expect("append");
        }
        wal.sync_all().expect("sync");
        let base = wal.rotate().expect("rotate");
        assert_eq!(base, 11);
        let s = wal.append(WalOp::Put, 99, 99).expect("append");
        assert_eq!(s, 11);
        wal.sync(s).expect("sync");
        let buf = read_bytes(&bytes);
        assert_eq!(buf.len(), HEADER_LEN + RECORD_LEN);
        assert_eq!(decode_header(&buf), DecodedHeader::Complete(11));
        assert_eq!(wal.stats().rotations, 1);
        let (_s, health) = wal.close();
        health.expect("clean close");
    }

    #[test]
    fn rotation_releases_unsynced_waiters() {
        // A record sitting in the queue when rotation lands is declared
        // checkpoint-covered; its sync must release, not hang or fail.
        let storage = VecStorage::new();
        let wal = Wal::create(storage, 1, WalOptions::default()).expect("create");
        let seq = wal.append(WalOp::Put, 1, 1).expect("append");
        wal.rotate().expect("rotate");
        wal.sync(seq).expect("covered by rotation");
        let (_s, health) = wal.close();
        health.expect("clean close");
    }

    #[test]
    fn storage_failure_is_sticky_and_blocks_acks() {
        use crate::failpoint::{CrashPlan, FailpointWriter};
        let inner = VecStorage::new();
        let bytes = inner.handle();
        // Allow the header plus one full record, then crash.
        let cut = (HEADER_LEN + RECORD_LEN) as u64;
        let storage = FailpointWriter::new(inner, CrashPlan::CutAt(cut));
        let wal = Wal::create(storage, 1, WalOptions::default()).expect("create");
        let s1 = wal.append(WalOp::Put, 1, 1).expect("append");
        wal.sync(s1).expect("first record fits");
        let s2 = wal.append(WalOp::Put, 2, 2).expect("append");
        assert!(wal.sync(s2).is_err(), "ack released past the crash point");
        assert!(
            wal.append(WalOp::Put, 3, 3).is_err(),
            "appends after a sticky failure must fail"
        );
        // The durable prefix still holds the acknowledged record only.
        let buf = read_bytes(&bytes);
        assert!(buf.len() < HEADER_LEN + 2 * RECORD_LEN);
    }

    #[test]
    fn crash_stops_without_flushing() {
        let storage = VecStorage::new();
        let bytes = storage.handle();
        let wal = Wal::create(storage, 1, WalOptions::default()).expect("create");
        let s = wal.append(WalOp::Put, 1, 1).expect("append");
        wal.sync(s).expect("sync");
        wal.crash();
        assert!(wal.append(WalOp::Put, 2, 2).is_err());
        drop(wal);
        // Only the synced record survives (plus anything the committer had
        // already picked up, which is none here).
        assert_eq!(read_bytes(&bytes).len(), HEADER_LEN + RECORD_LEN);
    }

    #[cfg(feature = "metrics")]
    #[test]
    fn metrics_report_batch_histogram_and_fsync_latency() {
        let storage = VecStorage::new();
        let wal = Arc::new(Wal::create(storage, 1, WalOptions::default()).expect("create"));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let wal = Arc::clone(&wal);
                s.spawn(move || {
                    for i in 0..100 {
                        let seq = wal.append(WalOp::Put, t * 1_000 + i, i).expect("append");
                        wal.sync(seq).expect("sync");
                    }
                });
            }
        });
        let (_s, health) = Arc::try_unwrap(wal)
            .unwrap_or_else(|_| panic!("sole owner"))
            .close();
        health.expect("clean close");
        let snap = obs::snapshot();
        let batch = snap
            .histograms
            .iter()
            .find(|(n, _)| n == "wal.batch_records")
            .map(|(_, h)| h.clone())
            .expect("wal.batch_records registered");
        assert!(batch.count > 0, "batch histogram empty");
        let fsync = snap
            .histograms
            .iter()
            .find(|(n, _)| n == "wal.fsync_ns")
            .map(|(_, h)| h.clone())
            .expect("wal.fsync_ns registered");
        assert_eq!(fsync.count, batch.count, "one fsync per record batch");
        assert!(snap
            .counters
            .iter()
            .any(|(n, v)| n == "wal.appends" && *v >= 400));
    }
}
