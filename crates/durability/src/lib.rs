//! Durability subsystem: per-shard write-ahead logging with group commit,
//! CRC64-framed records, checkpoint streams, crash recovery, and
//! deterministic crash-point fault injection.
//!
//! The pieces compose into the classic checkpoint + log protocol:
//!
//! 1. Every mutation is appended to a [`Wal`] and acknowledged only after
//!    the committer thread has fsynced the batch containing it (group
//!    commit — one fsync covers every writer that arrived while the
//!    previous batch was at the device).
//! 2. Periodically the index is checkpointed with [`save_index`] (the
//!    `DYTIS2` format, CRC-64/XZ protected) and the log is rotated with
//!    [`Wal::rotate`].
//! 3. On startup, [`recover_log_file`] replays the log's valid prefix over
//!    the checkpoint and truncates the file at the first torn or corrupt
//!    record. Records are absolute (`Put key value` / `Delete key`), so
//!    replaying a whole log over a newer checkpoint is idempotent and no
//!    sequence-number fencing is needed.
//!
//! The recovery invariant, tested byte-by-byte via [`FailpointWriter`]:
//! after a crash at *any* point in the byte stream, recovery yields exactly
//! the acknowledged writes — never fewer, and never a corrupt state.

pub mod checkpoint;
pub mod crc64;
pub mod failpoint;
pub mod record;
pub mod recover;
pub mod wal;

pub use checkpoint::{load_body, load_index, load_into, load_pairs, save_index, CKPT_MAGIC};
pub use crc64::{crc64, Crc64};
pub use failpoint::{CrashPlan, FailpointWriter, CRASH_MSG};
pub use record::{
    decode_header, decode_record, encode_header, encode_record, Decoded, DecodedHeader, Record,
    Seq, WalOp, HEADER_LEN, PAYLOAD_LEN, RECORD_LEN, WAL_MAGIC,
};
pub use recover::{recover_log_file, scan_bytes, Damage, RecoveredLog, ScanReport};
pub use wal::{FileStorage, VecStorage, Wal, WalOptions, WalStats, WalStorage};
