//! Versioned checkpoint streams shared by every index implementation.
//!
//! Format `DYTIS2` (little-endian): magic `DYTIS2\0\0` (8 bytes), key count
//! (u64), then `count` key/value pairs (16 bytes each) in strictly ascending
//! key order, then a CRC-64/XZ (u64) of every byte after the magic. The
//! layout matches the seed's `DYTIS1` exactly except for the trailing
//! checksum, which upgrades from an invertible XOR-rotate fold to a real
//! CRC (see [`crate::crc64`] for why the fold is not enough).
//!
//! The stream is structure-free — just the sorted pair set — so any
//! [`KvIndex`] can write it and any [`KvIndex`] or [`BulkLoad`]
//! implementation can restore it, which is what lets one checkpoint format
//! serve DyTIS, the B+-tree, and the learned-index baselines alike.

use crate::crc64::Crc64;
use index_traits::{BulkLoad, Key, KvIndex, Value};
use std::io::{self, Read, Write};

/// File magic for version-2 checkpoint streams.
pub const CKPT_MAGIC: [u8; 8] = *b"DYTIS2\0\0";

/// Scan batch size used when streaming pairs out of an index.
const SCAN_BATCH: usize = 4096;

/// Writes a `DYTIS2` checkpoint of `index` to `w`.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn save_index<I: KvIndex + ?Sized, W: Write>(index: &I, w: &mut W) -> io::Result<()> {
    w.write_all(&CKPT_MAGIC)?;
    let n = index.len() as u64;
    let mut crc = Crc64::new();
    let count_bytes = n.to_le_bytes();
    crc.update(&count_bytes);
    w.write_all(&count_bytes)?;
    let mut batch = Vec::with_capacity(SCAN_BATCH);
    let mut cursor: Key = 0;
    let mut written = 0u64;
    while written < n {
        batch.clear();
        index.scan(cursor, SCAN_BATCH, &mut batch);
        if batch.is_empty() {
            break;
        }
        for &(k, v) in &batch {
            let mut pair = [0u8; 16];
            pair[..8].copy_from_slice(&k.to_le_bytes());
            pair[8..].copy_from_slice(&v.to_le_bytes());
            crc.update(&pair);
            w.write_all(&pair)?;
            written += 1;
        }
        match batch.last() {
            Some(&(k, _)) if k < Key::MAX => cursor = k + 1,
            _ => break,
        }
    }
    debug_assert_eq!(written, n, "scan did not visit every key");
    w.write_all(&crc.finalize().to_le_bytes())?;
    Ok(())
}

/// Reads the body of a `DYTIS2` stream — everything *after* the magic,
/// which the caller has already consumed (so a loader can dispatch on the
/// version byte-by-byte) — calling `on_pair` for each pair in key order.
/// Returns the pair count.
///
/// # Errors
///
/// Returns `InvalidData` on truncated streams, unsorted or duplicate keys,
/// or CRC mismatch, besides propagating I/O errors.
pub fn load_body<R: Read>(r: &mut R, mut on_pair: impl FnMut(Key, Value)) -> io::Result<u64> {
    let mut crc = Crc64::new();
    let mut count_bytes = [0u8; 8];
    r.read_exact(&mut count_bytes)?;
    crc.update(&count_bytes);
    let n = u64::from_le_bytes(count_bytes);
    let mut prev: Option<Key> = None;
    for _ in 0..n {
        let mut pair = [0u8; 16];
        r.read_exact(&mut pair)?;
        crc.update(&pair);
        // invariant: both subslices of the 16-byte pair are 8 bytes long.
        let k = u64::from_le_bytes(pair[..8].try_into().expect("fixed slice"));
        // invariant: both subslices of the 16-byte pair are 8 bytes long.
        let v = u64::from_le_bytes(pair[8..].try_into().expect("fixed slice"));
        if let Some(p) = prev {
            if p >= k {
                return Err(bad("checkpoint pairs out of order"));
            }
        }
        prev = Some(k);
        on_pair(k, v);
    }
    let mut want = [0u8; 8];
    r.read_exact(&mut want)?;
    if u64::from_le_bytes(want) != crc.finalize() {
        return Err(bad("checkpoint CRC mismatch"));
    }
    Ok(n)
}

/// Restores a `DYTIS2` stream (magic included) into an existing index via
/// its insert path. Returns the pair count.
///
/// # Errors
///
/// Returns `InvalidData` on bad magic or any [`load_body`] failure.
pub fn load_into<R: Read, I: KvIndex + ?Sized>(r: &mut R, index: &mut I) -> io::Result<u64> {
    expect_magic(r)?;
    load_body(r, |k, v| index.insert(k, v))
}

/// Restores a `DYTIS2` stream (magic included) by bulk loading a fresh
/// index — the restore path for the learned-index baselines, whose models
/// train best from the full sorted array.
///
/// # Errors
///
/// Returns `InvalidData` on bad magic or any [`load_body`] failure.
pub fn load_index<R: Read, I: BulkLoad>(r: &mut R) -> io::Result<I> {
    let pairs = load_pairs(r)?;
    Ok(I::bulk_load(&pairs))
}

/// Reads a `DYTIS2` stream (magic included) into a sorted pair vector.
///
/// # Errors
///
/// Returns `InvalidData` on bad magic or any [`load_body`] failure.
pub fn load_pairs<R: Read>(r: &mut R) -> io::Result<Vec<(Key, Value)>> {
    expect_magic(r)?;
    let mut pairs = Vec::new();
    load_body(r, |k, v| pairs.push((k, v)))?;
    Ok(pairs)
}

fn expect_magic<R: Read>(r: &mut R) -> io::Result<()> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if magic != CKPT_MAGIC {
        return Err(bad("bad checkpoint magic"));
    }
    Ok(())
}

fn bad(msg: &'static str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use std::io::Cursor;

    #[derive(Default)]
    struct Oracle(BTreeMap<Key, Value>);

    impl KvIndex for Oracle {
        fn insert(&mut self, key: Key, value: Value) {
            self.0.insert(key, value);
        }
        fn get(&self, key: Key) -> Option<Value> {
            self.0.get(&key).copied()
        }
        fn remove(&mut self, key: Key) -> Option<Value> {
            self.0.remove(&key)
        }
        fn scan(&self, start: Key, count: usize, out: &mut Vec<(Key, Value)>) {
            out.extend(self.0.range(start..).take(count).map(|(k, v)| (*k, *v)));
        }
        fn len(&self) -> usize {
            self.0.len()
        }
        fn name(&self) -> &'static str {
            "oracle"
        }
        fn memory_bytes(&self) -> usize {
            self.0.len() * 16
        }
    }

    fn sample() -> Oracle {
        let mut o = Oracle::default();
        for k in 0..10_000u64 {
            o.insert(k.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 1, k);
        }
        o
    }

    #[test]
    fn roundtrip_via_insert() {
        let idx = sample();
        let mut buf = Vec::new();
        save_index(&idx, &mut buf).expect("save");
        let mut restored = Oracle::default();
        let n = load_into(&mut Cursor::new(&buf), &mut restored).expect("load");
        assert_eq!(n as usize, idx.len());
        assert_eq!(restored.0, idx.0);
    }

    #[test]
    fn roundtrip_via_pairs() {
        let idx = sample();
        let mut buf = Vec::new();
        save_index(&idx, &mut buf).expect("save");
        let pairs = load_pairs(&mut Cursor::new(&buf)).expect("load");
        assert_eq!(pairs.len(), idx.len());
        assert!(pairs.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn empty_roundtrip() {
        let idx = Oracle::default();
        let mut buf = Vec::new();
        save_index(&idx, &mut buf).expect("save");
        assert_eq!(buf.len(), 8 + 8 + 8); // magic + count + crc
        let pairs = load_pairs(&mut Cursor::new(&buf)).expect("load");
        assert!(pairs.is_empty());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = Vec::new();
        save_index(&sample(), &mut buf).expect("save");
        buf[0] ^= 0xFF;
        assert!(load_pairs(&mut Cursor::new(&buf)).is_err());
    }

    #[test]
    fn every_single_bit_flip_rejected_in_small_stream() {
        let mut idx = Oracle::default();
        idx.insert(3, 30);
        idx.insert(9, 90);
        let mut buf = Vec::new();
        save_index(&idx, &mut buf).expect("save");
        for byte in 0..buf.len() {
            for bit in 0..8 {
                let mut tampered = buf.clone();
                tampered[byte] ^= 1 << bit;
                assert!(
                    load_pairs(&mut Cursor::new(&tampered)).is_err(),
                    "flip at {byte}:{bit} accepted"
                );
            }
        }
    }

    #[test]
    fn truncation_rejected() {
        let mut buf = Vec::new();
        save_index(&sample(), &mut buf).expect("save");
        buf.truncate(buf.len() - 9);
        assert!(load_pairs(&mut Cursor::new(&buf)).is_err());
    }

    #[test]
    fn unsorted_pairs_rejected() {
        // Hand-build a stream with a sorted CRC but out-of-order keys.
        let mut body = Vec::new();
        body.extend_from_slice(&2u64.to_le_bytes());
        for (k, v) in [(5u64, 50u64), (1u64, 10u64)] {
            body.extend_from_slice(&k.to_le_bytes());
            body.extend_from_slice(&v.to_le_bytes());
        }
        let crc = crate::crc64::crc64(&body);
        let mut buf = CKPT_MAGIC.to_vec();
        buf.extend_from_slice(&body);
        buf.extend_from_slice(&crc.to_le_bytes());
        let err = load_pairs(&mut Cursor::new(&buf)).expect_err("unsorted accepted");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
