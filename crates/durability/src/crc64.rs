//! CRC-64/XZ (aka CRC-64/GO-ECMA): reflected polynomial `0xC96C5795D7870F42`,
//! init and xorout all-ones.
//!
//! This replaces the seed repo's XOR-rotate fold checksum, whose per-step
//! invertibility makes second preimages trivially constructible (see the
//! regression test in `crates/core/src/persist.rs`). CRC64 carries the
//! standard guarantees: all burst errors up to 64 bits are detected, as is
//! any odd number of bit flips, and random corruption survives with
//! probability 2^-64.

/// Lookup table for one byte of the reflected CRC-64/XZ polynomial.
const TABLE: [u64; 256] = build_table();

const fn build_table() -> [u64; 256] {
    // Reflected form of the ECMA-182 polynomial 0x42F0E1EBA9EA3693.
    const POLY: u64 = 0xC96C_5795_D787_0F42;
    let mut table = [0u64; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u64;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Incremental CRC-64/XZ digest.
///
/// ```
/// let mut crc = durability::Crc64::new();
/// crc.update(b"123456789");
/// assert_eq!(crc.finalize(), 0x995D_C9BB_DF19_39FA); // standard check value
/// ```
#[derive(Debug, Clone)]
pub struct Crc64 {
    state: u64,
}

impl Crc64 {
    /// Starts a fresh digest.
    pub fn new() -> Self {
        Crc64 { state: !0 }
    }

    /// Feeds `bytes` into the digest.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = TABLE[((crc ^ b as u64) & 0xFF) as usize] ^ (crc >> 8);
        }
        self.state = crc;
    }

    /// Returns the digest of everything fed so far (the digest itself is
    /// unchanged and can keep accumulating).
    pub fn finalize(&self) -> u64 {
        !self.state
    }
}

impl Default for Crc64 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot CRC-64/XZ of `bytes`.
pub fn crc64(bytes: &[u8]) -> u64 {
    let mut c = Crc64::new();
    c.update(bytes);
    c.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_check_value() {
        // The published CRC-64/XZ check value for the ASCII digits 1..9.
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let mut inc = Crc64::new();
        for chunk in data.chunks(37) {
            inc.update(chunk);
        }
        assert_eq!(inc.finalize(), crc64(&data));
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc64(b""), 0);
    }

    #[test]
    fn detects_order() {
        // Unlike an XOR fold, swapping two words changes the digest.
        let a = [1u8, 0, 0, 0, 0, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0];
        let b = [2u8, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0];
        assert_ne!(crc64(&a), crc64(&b));
    }

    #[test]
    fn single_bit_flip_detected_everywhere() {
        let base: Vec<u8> = (0..64u8).collect();
        let want = crc64(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut tampered = base.clone();
                tampered[byte] ^= 1 << bit;
                assert_ne!(crc64(&tampered), want, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
