//! Fault-injection sweep (the PR's acceptance bar): build a seeded trace of
//! WAL operations, then crash the log at **every record boundary**, at
//! random mid-record byte offsets, and under random bit flips — recovery
//! must reconstruct exactly the acknowledged prefix every single time.
//!
//! A failing case dumps the offending byte image under
//! `target/durability-artifacts/` (workspace target dir) so CI can upload
//! it for offline replay.

use durability::{
    encode_header, encode_record, scan_bytes, CrashPlan, FailpointWriter, Record, VecStorage, Wal,
    WalOp, WalOptions, HEADER_LEN, RECORD_LEN,
};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::BTreeMap;
use std::path::PathBuf;

/// Operations in the seeded trace: 10k in release (the ISSUE's bar), fewer
/// under debug so `cargo test -q` stays quick.
#[cfg(debug_assertions)]
const OPS: usize = 2_000;
#[cfg(not(debug_assertions))]
const OPS: usize = 10_000;

const SEED: u64 = 0xD17A_5EED;
const KEY_SPACE: u64 = 1 << 10;

fn artifact_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/durability-artifacts")
}

/// Writes `image` to the artifact directory and returns its path (best
/// effort — the panic that follows carries the real diagnosis).
fn dump_artifact(name: &str, image: &[u8]) -> PathBuf {
    let dir = artifact_dir();
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join(name);
    let _ = std::fs::write(&path, image);
    path
}

/// A deterministic trace: mostly puts, some deletes, over a small key space
/// so deletes actually hit.
fn build_trace(ops: usize) -> Vec<(WalOp, u64, u64)> {
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut trace = Vec::with_capacity(ops);
    for i in 0..ops {
        let key = rng.gen_range(0..KEY_SPACE);
        if rng.gen_bool(0.2) {
            trace.push((WalOp::Delete, key, 0));
        } else {
            trace.push((WalOp::Put, key, i as u64));
        }
    }
    trace
}

/// Encodes the trace as one WAL image (header base_seq = 1).
fn encode_trace(trace: &[(WalOp, u64, u64)]) -> Vec<u8> {
    let mut buf = encode_header(1).to_vec();
    for (i, &(op, k, v)) in trace.iter().enumerate() {
        encode_record(1 + i as u64, op, k, v, &mut buf);
    }
    buf
}

fn apply(map: &mut BTreeMap<u64, u64>, rec: Record) {
    match rec.op {
        WalOp::Put => {
            map.insert(rec.key, rec.value);
        }
        WalOp::Delete => {
            map.remove(&rec.key);
        }
    }
}

/// Recovers `image` and checks the result against `oracle` (the state after
/// exactly `expect_records` operations). Returns a description on mismatch.
fn check_recovery(
    image: &[u8],
    expect_records: u64,
    oracle: &BTreeMap<u64, u64>,
) -> Result<(), String> {
    let mut recovered = BTreeMap::new();
    let report = scan_bytes(image, |rec| apply(&mut recovered, rec));
    if report.records != expect_records {
        return Err(format!(
            "replayed {} records, expected {}",
            report.records, expect_records
        ));
    }
    if report.next_seq != 1 + expect_records {
        return Err(format!(
            "next_seq {} after {} records",
            report.next_seq, expect_records
        ));
    }
    if &recovered != oracle {
        return Err(format!(
            "state mismatch after {} records: {} recovered keys vs {} oracle keys",
            expect_records,
            recovered.len(),
            oracle.len()
        ));
    }
    Ok(())
}

/// Crash at every record boundary: recovery must be exact — the whole
/// prefix, nothing else, no damage reported.
#[test]
fn every_record_boundary_recovers_exactly() {
    let trace = build_trace(OPS);
    let image = encode_trace(&trace);
    // The oracle advances record-by-record so each boundary check compares
    // against the state after exactly the surviving records.
    let mut oracle = BTreeMap::new();
    for cut_records in 0..=trace.len() {
        let cut = HEADER_LEN + cut_records * RECORD_LEN;
        if let Err(why) = check_recovery(&image[..cut], cut_records as u64, &oracle) {
            let path = dump_artifact(&format!("boundary-{cut_records}.wal"), &image[..cut]);
            panic!("boundary {cut_records}: {why} (image: {})", path.display());
        }
        let report = scan_bytes(&image[..cut], |_| {});
        assert!(
            report.damage.is_none(),
            "boundary {cut_records}: spurious damage {:?}",
            report.damage
        );
        if cut_records < trace.len() {
            let (op, k, v) = trace[cut_records];
            apply(
                &mut oracle,
                Record {
                    seq: 1 + cut_records as u64,
                    op,
                    key: k,
                    value: v,
                },
            );
        }
    }
}

/// Crash at random mid-record offsets: the torn record is dropped, every
/// complete record before it survives.
#[test]
fn random_midrecord_cuts_recover_the_prefix() {
    let trace = build_trace(OPS);
    let image = encode_trace(&trace);
    // Prefix oracles at every boundary, built once (the random cuts jump
    // around, so incremental tracking doesn't apply).
    let mut prefixes: Vec<BTreeMap<u64, u64>> = Vec::with_capacity(trace.len() + 1);
    let mut state = BTreeMap::new();
    prefixes.push(state.clone());
    for (i, &(op, k, v)) in trace.iter().enumerate() {
        apply(
            &mut state,
            Record {
                seq: 1 + i as u64,
                op,
                key: k,
                value: v,
            },
        );
        prefixes.push(state.clone());
    }
    let mut rng = StdRng::seed_from_u64(SEED ^ 0xF00D);
    for case in 0..256 {
        let cut = rng.gen_range(HEADER_LEN..image.len());
        let whole = (cut - HEADER_LEN) / RECORD_LEN;
        let boundary = (cut - HEADER_LEN).is_multiple_of(RECORD_LEN);
        if let Err(why) = check_recovery(&image[..cut], whole as u64, &prefixes[whole]) {
            let path = dump_artifact(&format!("midrecord-{case}.wal"), &image[..cut]);
            panic!("cut {cut}: {why} (image: {})", path.display());
        }
        let report = scan_bytes(&image[..cut], |_| {});
        if boundary {
            assert!(report.damage.is_none(), "cut {cut}: {:?}", report.damage);
        } else {
            let damage = report.damage.unwrap_or_else(|| {
                let path = dump_artifact(&format!("midrecord-{case}.wal"), &image[..cut]);
                panic!(
                    "cut {cut}: torn tail not reported (image: {})",
                    path.display()
                )
            });
            assert!(
                damage.torn,
                "cut {cut}: mid-record cut reported as {damage:?}"
            );
        }
    }
}

/// Random single-bit flips: recovery must stop exactly at the record
/// containing the flip (or treat the log as empty for header flips) and
/// reproduce the prefix before it.
#[test]
fn random_bit_flips_truncate_at_the_corrupt_record() {
    let trace = build_trace(OPS.min(2_000)); // full-state check per flip: keep n modest
    let image = encode_trace(&trace);
    let mut prefixes: Vec<BTreeMap<u64, u64>> = Vec::with_capacity(trace.len() + 1);
    let mut state = BTreeMap::new();
    prefixes.push(state.clone());
    for (i, &(op, k, v)) in trace.iter().enumerate() {
        apply(
            &mut state,
            Record {
                seq: 1 + i as u64,
                op,
                key: k,
                value: v,
            },
        );
        prefixes.push(state.clone());
    }
    let mut rng = StdRng::seed_from_u64(SEED ^ 0xB17F);
    for case in 0..256 {
        let offset = rng.gen_range(0..image.len());
        let bit = rng.gen_range(0..8u32) as u8;
        let mut tampered = image.clone();
        tampered[offset] ^= 1 << bit;
        let expect_records = if offset < HEADER_LEN {
            0
        } else {
            ((offset - HEADER_LEN) / RECORD_LEN) as u64
        };
        let oracle = &prefixes[expect_records as usize];
        let mut recovered = BTreeMap::new();
        let report = scan_bytes(&tampered, |rec| apply(&mut recovered, rec));
        let ok = report.records == expect_records
            && &recovered == oracle
            && report.damage.is_some_and(|d| !d.torn);
        if !ok {
            let path = dump_artifact(&format!("bitflip-{case}.wal"), &tampered);
            panic!(
                "flip {offset}:{bit}: replayed {} (expected {expect_records}), damage {:?} \
                 (image: {})",
                report.records,
                report.damage,
                path.display()
            );
        }
    }
}

/// Live group-commit crash: writers race against a committer whose storage
/// cuts the byte stream at a random offset. The durability contract —
/// every *acknowledged* write is in the recovered prefix, and everything
/// recovered was actually submitted — must hold at every crash point.
#[test]
fn live_group_commit_crash_keeps_every_acknowledged_write() {
    let mut rng = StdRng::seed_from_u64(SEED ^ 0xC0FFEE);
    for round in 0..16 {
        let writers = 4u64;
        let per_writer = 200u64;
        let max_bytes = HEADER_LEN as u64 + writers * per_writer * RECORD_LEN as u64;
        let cut = rng.gen_range(HEADER_LEN as u64..max_bytes);
        let inner = VecStorage::new();
        let bytes = inner.handle();
        let storage = FailpointWriter::new(inner, CrashPlan::CutAt(cut));
        let wal = std::sync::Arc::new(
            Wal::create(storage, 1, WalOptions::default()).expect("header below any cut"),
        );
        // seq -> (op, key, value) for everything submitted; seqs of acks.
        let submitted = std::sync::Mutex::new(BTreeMap::new());
        let acked = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for t in 0..writers {
                let wal = std::sync::Arc::clone(&wal);
                let submitted = &submitted;
                let acked = &acked;
                s.spawn(move || {
                    for i in 0..per_writer {
                        let (key, value) = (t * 10_000 + i, i);
                        let Ok(seq) = wal.append(WalOp::Put, key, value) else {
                            return; // sticky failure: stop writing
                        };
                        submitted.lock().unwrap().insert(seq, (key, value));
                        if wal.sync(seq).is_ok() {
                            acked.lock().unwrap().push(seq);
                        }
                    }
                });
            }
        });
        let submitted = submitted.into_inner().unwrap();
        let acked = acked.into_inner().unwrap();
        let image = bytes.lock().unwrap().clone();
        let mut recovered = BTreeMap::new();
        let report = scan_bytes(&image, |rec| {
            recovered.insert(rec.seq, (rec.key, rec.value));
        });
        // Everything recovered was submitted, verbatim.
        for (seq, kv) in &recovered {
            if submitted.get(seq) != Some(kv) {
                let path = dump_artifact(&format!("live-{round}.wal"), &image);
                panic!(
                    "round {round}: recovered seq {seq} = {kv:?} never submitted \
                     (image: {})",
                    path.display()
                );
            }
        }
        // Every acknowledged write was recovered.
        for seq in &acked {
            if !recovered.contains_key(seq) {
                let path = dump_artifact(&format!("live-{round}.wal"), &image);
                panic!(
                    "round {round}: acked seq {seq} lost (durable up to {}, cut at {cut}; \
                     image: {})",
                    report.next_seq - 1,
                    path.display()
                );
            }
        }
    }
}

/// Silent in-flight corruption (FlipBit) is invisible to the writer but
/// caught at recovery: the prefix before the corrupt record survives.
#[test]
fn live_bit_flip_detected_at_recovery() {
    let n = 100u64;
    let flip_offset = (HEADER_LEN + 3 * RECORD_LEN + 17) as u64; // inside record 4
    let inner = VecStorage::new();
    let bytes = inner.handle();
    let storage = FailpointWriter::new(
        inner,
        CrashPlan::FlipBit {
            offset: flip_offset,
            bit: 5,
        },
    );
    let wal = Wal::create(storage, 1, WalOptions::default()).expect("create");
    for i in 0..n {
        let seq = wal.append(WalOp::Put, i, i).expect("append");
        wal.sync(seq).expect("flip is silent: sync succeeds");
    }
    let (_storage, health) = wal.close();
    health.expect("flip is silent: close is clean");
    let image = bytes.lock().unwrap().clone();
    let mut recovered = BTreeMap::new();
    let report = scan_bytes(&image, |rec| apply(&mut recovered, rec));
    assert_eq!(report.records, 3, "replay must stop at the corrupt record");
    let damage = report.damage.expect("corruption must be reported");
    assert!(!damage.torn);
    assert_eq!(damage.offset, (HEADER_LEN + 3 * RECORD_LEN) as u64);
    assert_eq!(recovered.len(), 3);
}
