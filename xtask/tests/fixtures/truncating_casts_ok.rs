// Clean: checked conversion, plus a justified compile-time-constant cast.
fn frame(out: &mut Vec<u8>, payload: &[u8]) -> Result<(), FrameError> {
    let len = u32::try_from(payload.len()).map_err(|_| FrameError::TooLong)?;
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(payload);
    Ok(())
}

fn header(out: &mut Vec<u8>) {
    // justified: HEADER_LEN is a compile-time 16, far inside u32.
    out.extend_from_slice(&(HEADER_LEN as u32).to_le_bytes());
}
