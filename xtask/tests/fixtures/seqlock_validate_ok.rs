// Clean: the same seqlock validate loops, made acceptable three ways —
// an asserted attempt bound, a justified bounded-for shape, and a
// justified loop with a locked fallback.
fn get_optimistic(&self, key: u64) -> Option<u64> {
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        assert!(attempts <= 8, "optimistic read failed to converge");
        let v0 = self.version.load(Ordering::SeqCst);
        if v0 & 1 == 1 {
            continue;
        }
        let Some(seg) = self.seg.try_read() else {
            continue;
        };
        let val = seg.probe(key);
        drop(seg);
        if self.version.load(Ordering::SeqCst) == v0 {
            return val;
        }
    }
}

fn get(&self, key: u64) -> Option<u64> {
    // justified: bounded by READ_RETRIES, with the locked fallback below
    // when the optimistic budget is exhausted.
    loop {
        let v0 = self.version.load(Ordering::SeqCst);
        if let Some(v) = self.try_probe(key, v0) {
            return v;
        }
        if self.give_up() {
            break;
        }
    }
    self.get_locked(key)
}
