// Clean: contents are durable before the rename publishes the name —
// plus one justified rename of a file that recovery re-verifies.
fn publish(tmp: &Path, dst: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut f = File::create(tmp)?;
    f.write_all(bytes)?;
    f.sync_data()?;
    std::fs::rename(tmp, dst)?;
    Ok(())
}

fn stage(tmp: &Path, dst: &Path) -> std::io::Result<()> {
    // justified: staging move inside the scratch dir; recovery CRC-checks
    // the file before trusting it, so a torn publish is detected.
    std::fs::rename(tmp, dst)?;
    Ok(())
}
