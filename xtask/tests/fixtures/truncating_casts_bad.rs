// Seeded violation: a runtime length narrowed into the framing field.
fn frame(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
}
