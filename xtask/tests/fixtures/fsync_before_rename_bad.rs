// Seeded violation: publishes the temp file without syncing its contents.
fn publish(tmp: &Path, dst: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut f = File::create(tmp)?;
    f.write_all(bytes)?;
    std::fs::rename(tmp, dst)?;
    Ok(())
}
