// Seeded violation: raw-pointer read with no safety argument.
fn probe(slot: *const u64) -> u64 {
    unsafe { slot.read() }
}
