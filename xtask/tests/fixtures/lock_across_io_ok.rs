// Clean: snapshot under the lock, I/O after release — plus one justified
// site where the lock must span the write.
fn checkpoint(&self) -> std::io::Result<()> {
    let snapshot = {
        let state = self.state.lock();
        state.serialize()
    };
    self.file.write_all(&snapshot)?;
    self.file.sync_all()?;
    Ok(())
}

fn group_commit(&self) -> std::io::Result<()> {
    let batch = self.queue.lock();
    // justified: group commit amortizes the fsync across the batch; the
    // lock must cover the write so acknowledged order matches disk order.
    self.file.write_all(&batch.bytes())?;
    Ok(())
}
