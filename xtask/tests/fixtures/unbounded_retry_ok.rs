// Clean: a bounded retry, a condvar wait, and a justified retry loop.
fn insert(&self, key: u64, value: u64) {
    let mut guard = 0u32;
    loop {
        guard += 1;
        assert!(guard < 10_000, "insert failed to converge");
        let mut seg = self.seg.write();
        if seg.try_insert(key, value) {
            return;
        }
    }
}

fn wait_ready(&self) {
    let mut st = self.state.lock();
    loop {
        if st.ready {
            return;
        }
        st = self.cv.wait(st);
    }
}

fn upsert(&self, key: u64, value: u64) {
    // justified: each retry either succeeds or strictly grows capacity
    // via maintain(), so the loop terminates.
    loop {
        let dir = self.dir.read();
        if dir.try_upsert(key, value) {
            return;
        }
        drop(dir);
        self.maintain();
    }
}
