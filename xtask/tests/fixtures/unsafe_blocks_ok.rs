// Clean (in an allowlisted crate): the safety argument is stated.
fn probe(slots: &[u64; 8], idx: usize) -> u64 {
    // justified: idx is masked to 0..8 by the caller (bucket_of), so the
    // unchecked access stays inside the fixed-size bucket array.
    unsafe { *slots.get_unchecked(idx & 7) }
}
