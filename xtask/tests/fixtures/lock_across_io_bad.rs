// Seeded violation: fsync while the registry mutex is held.
fn checkpoint(&self) -> std::io::Result<()> {
    let state = self.state.lock();
    self.file.write_all(&state.serialize())?;
    self.file.sync_all()?;
    Ok(())
}
