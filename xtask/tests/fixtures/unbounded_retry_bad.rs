// Seeded violation: retries the lock forever with no bound or backoff.
fn wait_ready(&self) {
    loop {
        let st = self.state.lock();
        if st.ready {
            return;
        }
    }
}
