// Seeded violation: a seqlock validate loop with no attempt bound, no
// backoff, and no locked fallback — a writer that keeps the version
// moving livelocks this reader forever. Note it acquires no lock at all:
// only the version re-load and the try_read mark it as a retry loop.
fn get_optimistic(&self, key: u64) -> Option<u64> {
    loop {
        let v0 = self.version.load(Ordering::SeqCst);
        if v0 & 1 == 1 {
            continue;
        }
        let Some(seg) = self.seg.try_read() else {
            continue;
        };
        let val = seg.probe(key);
        drop(seg);
        if self.version.load(Ordering::SeqCst) == v0 {
            return val;
        }
    }
}
