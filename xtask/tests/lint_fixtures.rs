//! Non-vacuity suite for the lint engine: every rule added since the
//! original three is exercised against a seeded-violation fixture (must
//! flag) and a clean/justified variant (must pass). A rule whose `_bad`
//! fixture stops failing has gone vacuous — the checked-in source staying
//! clean proves nothing by itself.
//!
//! Fixtures live under `tests/fixtures/`; they are linted as text, never
//! compiled.

use xtask::lint::rules::{
    dependency_policy::DependencyPolicy, fsync_before_rename::FsyncBeforeRename,
    lock_across_io::LockAcrossIo, truncating_casts::TruncatingCasts,
    unbounded_retry::UnboundedRetry, unsafe_blocks::UnsafeBlocks,
};
use xtask::lint::{FileClass, ManifestRule, Rule, SourceFile};

/// Lints `src` as library code of `crates/<crate_dir>` with one rule.
fn run_rule(rule: &dyn Rule, crate_dir: &str, src: &str) -> Vec<String> {
    let file = SourceFile::parse("fixture.rs", crate_dir, FileClass::Library, src);
    assert!(
        rule.applies(&file),
        "{} skipped its own fixture",
        rule.name()
    );
    let mut findings = Vec::new();
    rule.check(&file, &mut findings);
    findings
}

fn assert_flags(rule: &dyn Rule, crate_dir: &str, src: &str) {
    let findings = run_rule(rule, crate_dir, src);
    assert!(
        !findings.is_empty(),
        "{}: seeded violation not flagged — rule is vacuous",
        rule.name()
    );
    for f in &findings {
        assert!(
            f.contains(&format!("[{}]", rule.name())),
            "finding missing rule tag: {f}"
        );
    }
}

fn assert_clean(rule: &dyn Rule, crate_dir: &str, src: &str) {
    let findings = run_rule(rule, crate_dir, src);
    assert!(
        findings.is_empty(),
        "{}: clean fixture flagged: {findings:?}",
        rule.name()
    );
}

#[test]
fn lock_across_io_fixtures() {
    let rule = LockAcrossIo;
    assert_flags(
        &rule,
        "kvstore",
        include_str!("fixtures/lock_across_io_bad.rs"),
    );
    assert_clean(
        &rule,
        "kvstore",
        include_str!("fixtures/lock_across_io_ok.rs"),
    );
}

#[test]
fn fsync_before_rename_fixtures() {
    let rule = FsyncBeforeRename;
    assert_flags(
        &rule,
        "kvstore",
        include_str!("fixtures/fsync_before_rename_bad.rs"),
    );
    assert_clean(
        &rule,
        "kvstore",
        include_str!("fixtures/fsync_before_rename_ok.rs"),
    );
}

#[test]
fn unsafe_blocks_fixtures() {
    let rule = UnsafeBlocks;
    // Unjustified unsafe is flagged even in the allowlisted crate.
    assert_flags(&rule, "core", include_str!("fixtures/unsafe_blocks_bad.rs"));
    // The justified variant passes only where the allowlist permits it …
    assert_clean(&rule, "core", include_str!("fixtures/unsafe_blocks_ok.rs"));
    // … in kvstore too (the reactor's sanctioned FFI boundary) …
    assert_clean(
        &rule,
        "kvstore",
        include_str!("fixtures/unsafe_blocks_ok.rs"),
    );
    // … and stays flagged everywhere else, justification or not.
    assert_flags(&rule, "bench", include_str!("fixtures/unsafe_blocks_ok.rs"));
}

#[test]
fn truncating_casts_fixtures() {
    let rule = TruncatingCasts;
    assert_flags(
        &rule,
        "durability",
        include_str!("fixtures/truncating_casts_bad.rs"),
    );
    assert_clean(
        &rule,
        "durability",
        include_str!("fixtures/truncating_casts_ok.rs"),
    );
    // Outside the durability crate the rule does not apply at all.
    let other = SourceFile::parse(
        "fixture.rs",
        "core",
        FileClass::Library,
        include_str!("fixtures/truncating_casts_bad.rs"),
    );
    assert!(!rule.applies(&other));
}

#[test]
fn unbounded_retry_fixtures() {
    let rule = UnboundedRetry;
    assert_flags(
        &rule,
        "core",
        include_str!("fixtures/unbounded_retry_bad.rs"),
    );
    assert_clean(
        &rule,
        "core",
        include_str!("fixtures/unbounded_retry_ok.rs"),
    );
}

/// The seqlock extension of `unbounded-retry`: a validate loop that
/// re-loads a version counter / spins on `try_read` must show the same
/// bound-or-fallback evidence as a lock/CAS retry loop.
#[test]
fn seqlock_validate_fixtures() {
    let rule = UnboundedRetry;
    assert_flags(
        &rule,
        "core",
        include_str!("fixtures/seqlock_validate_bad.rs"),
    );
    assert_clean(
        &rule,
        "core",
        include_str!("fixtures/seqlock_validate_ok.rs"),
    );
}

#[test]
fn dependency_policy_fixtures() {
    let rule = DependencyPolicy;
    let mut findings = Vec::new();
    rule.check(
        "fixture/Cargo.toml",
        include_str!("fixtures/dependency_policy_bad.toml"),
        &mut findings,
    );
    // Registry version, loom in [dependencies], proptest in
    // [dependencies], non-path workspace entry.
    assert_eq!(findings.len(), 4, "{findings:?}");

    let mut findings = Vec::new();
    rule.check(
        "fixture/Cargo.toml",
        include_str!("fixtures/dependency_policy_ok.toml"),
        &mut findings,
    );
    assert!(findings.is_empty(), "{findings:?}");
}

/// The real tree must be clean: the engine's source collection sees the
/// widened set (workspace src/, tests/, examples/, crate tests) and no
/// rule fires on checked-in code.
#[test]
fn workspace_is_clean_under_widened_scan() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask sits under the workspace root")
        .to_path_buf();
    let sources = xtask::lint::collect_sources(&root);
    let rels: Vec<String> = sources
        .iter()
        .map(|p| p.strip_prefix(&root).unwrap_or(p).display().to_string())
        .collect();
    for expected in [
        "src/lib.rs",
        "tests/concurrent.rs",
        "examples/quickstart.rs",
        "crates/core/src/concurrent.rs",
        "crates/core/tests/loom_models.rs",
        "crates/bench/src/lib.rs",
    ] {
        assert!(
            rels.iter().any(|r| r == expected),
            "widened scan missing {expected}"
        );
    }
    assert!(
        !rels
            .iter()
            .any(|r| r.starts_with("compat/") || r.starts_with("xtask/")),
        "compat/ and xtask/ must stay exempt"
    );
    let findings = xtask::lint::run(&root);
    assert!(findings.is_empty(), "{findings:?}");
}
