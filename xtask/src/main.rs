//! Dependency-free workspace tooling, invoked as `cargo run -p xtask -- lint`.
//!
//! The `lint` subcommand scans every library source under `crates/` (the
//! benchmark harness `crates/bench`, test modules, `tests/`, `benches/`,
//! `examples/`, the `compat/` shims, and xtask itself are exempt) for three
//! classes of correctness hazards the compiler does not catch:
//!
//! 1. **Panic sites** — `.unwrap()` / `.expect(` in library code must carry
//!    a `// invariant:` comment (same line or the comment block directly
//!    above) stating why the failure is impossible.
//! 2. **Relaxed atomics** — `Ordering::Relaxed` must carry a `// relaxed:`
//!    comment justifying why no ordering is needed (pure counters only).
//! 3. **Lock order** — guards acquired in a scope must follow the documented
//!    directory → segment → bucket order: directory/root locks (a `.read()`
//!    / `.write()` whose receiver ends in `dir` or `inner`) before other
//!    RwLocks before `.lock()` mutexes. Acquiring a lower-level lock while a
//!    higher-level guard from the same scope is live is reported.
//!
//! All diagnostics are `file:line: message`; any finding exits non-zero.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let root = workspace_root();
            let mut findings = Vec::new();
            for file in rust_sources(&root.join("crates")) {
                let Ok(text) = std::fs::read_to_string(&file) else {
                    findings.push(format!("{}: unreadable", file.display()));
                    continue;
                };
                let rel = file
                    .strip_prefix(&root)
                    .unwrap_or(&file)
                    .display()
                    .to_string();
                lint_file(&rel, &text, &mut findings);
            }
            if findings.is_empty() {
                println!("xtask lint: clean");
                ExitCode::SUCCESS
            } else {
                for f in &findings {
                    eprintln!("{f}");
                }
                eprintln!("xtask lint: {} finding(s)", findings.len());
                ExitCode::FAILURE
            }
        }
        _ => {
            eprintln!("usage: cargo run -p xtask -- lint");
            ExitCode::from(2)
        }
    }
}

fn workspace_root() -> PathBuf {
    // xtask sits directly under the workspace root.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().map(Path::to_path_buf).unwrap_or(manifest)
}

/// Recursively collects `.rs` files, skipping bench/test/example trees and
/// the benchmark harness crate.
fn rust_sources(dir: &Path) -> Vec<PathBuf> {
    const SKIP_DIRS: &[&str] = &["tests", "benches", "examples", "target", "bench"];
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return out;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name) && !name.starts_with('.') {
                out.extend(rust_sources(&path));
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    out
}

/// A lock guard live in the current scope.
struct Guard {
    depth: usize,
    level: u8,
    name: String,
    line: usize,
}

/// Runs all three rules over one file, appending `file:line: message`
/// diagnostics to `findings`.
fn lint_file(file: &str, text: &str, findings: &mut Vec<String>) {
    let raw_lines: Vec<&str> = text.lines().collect();
    let mut stripper = Stripper::default();
    let code_lines: Vec<String> = raw_lines.iter().map(|l| stripper.strip(l)).collect();

    let mut depth = 0usize;
    let mut guards: Vec<Guard> = Vec::new();
    // Test-module skipping: `#[cfg(...test...)] mod x { ... }`.
    let mut pending_test_attr = false;
    let mut test_exit_depth: Option<usize> = None;

    for (i, code) in code_lines.iter().enumerate() {
        let lineno = i + 1;
        let trimmed = code.trim();
        let in_test = test_exit_depth.is_some();

        if !in_test {
            if trimmed.starts_with("#[") {
                if trimmed.contains("cfg(") && trimmed.contains("test") {
                    pending_test_attr = true;
                }
            } else if !trimmed.is_empty() {
                if pending_test_attr && trimmed.starts_with("mod ") && trimmed.contains('{') {
                    test_exit_depth = Some(depth);
                }
                pending_test_attr = false;
            }
        }

        if test_exit_depth.is_none() {
            check_panic_sites(file, lineno, code, &raw_lines, i, findings);
            check_relaxed(file, lineno, code, &raw_lines, i, findings);
            check_lock_order(file, lineno, code, depth, &mut guards, findings);
        }

        for c in code.chars() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth = depth.saturating_sub(1);
                    guards.retain(|g| g.depth <= depth);
                    if test_exit_depth.is_some_and(|d| depth <= d) {
                        test_exit_depth = None;
                    }
                }
                _ => {}
            }
        }
    }
}

/// True when the flagged line, an earlier line of the same (possibly
/// multi-line) statement, or the contiguous `//` comment block directly
/// above that statement contains `marker`.
fn justified(raw_lines: &[&str], i: usize, marker: &str) -> bool {
    if raw_lines[i].contains(marker) {
        return true;
    }
    // Walk up to the first line of the enclosing statement: a line is a
    // continuation while the line above it is code that does not end a
    // statement or open/close a block.
    let mut j = i;
    while j > 0 {
        let above = raw_lines[j - 1].trim();
        if above.is_empty()
            || above.starts_with("//")
            || above.ends_with(';')
            || above.ends_with('{')
            || above.ends_with('}')
        {
            break;
        }
        j -= 1;
        if raw_lines[j].contains(marker) {
            return true;
        }
    }
    while j > 0 {
        j -= 1;
        let t = raw_lines[j].trim_start();
        if t.starts_with("//") {
            if t.contains(marker) {
                return true;
            }
        } else {
            break;
        }
    }
    false
}

fn check_panic_sites(
    file: &str,
    lineno: usize,
    code: &str,
    raw_lines: &[&str],
    i: usize,
    findings: &mut Vec<String>,
) {
    for pat in [".unwrap()", ".expect("] {
        if code.contains(pat) && !justified(raw_lines, i, "invariant:") {
            findings.push(format!(
                "{file}:{lineno}: `{pat}` in library code without an `// invariant:` \
                 justification (return an error or document why this cannot fail)"
            ));
        }
    }
}

fn check_relaxed(
    file: &str,
    lineno: usize,
    code: &str,
    raw_lines: &[&str],
    i: usize,
    findings: &mut Vec<String>,
) {
    if code.contains("Ordering::Relaxed") && !justified(raw_lines, i, "relaxed:") {
        findings.push(format!(
            "{file}:{lineno}: `Ordering::Relaxed` without a `// relaxed:` justification \
             (use Acquire/Release when the value is read back for accounting)"
        ));
    }
}

/// Lock level of an acquisition ending at byte offset `dot` (the `.` of
/// `.read()`/`.write()`): 1 for directory/root locks, 2 otherwise.
fn rwlock_level(code: &str, dot: usize) -> u8 {
    let ident: String = code[..dot]
        .chars()
        .rev()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    let ident: String = ident.chars().rev().collect();
    if ident == "dir" || ident == "inner" {
        1
    } else {
        2
    }
}

fn check_lock_order(
    file: &str,
    lineno: usize,
    code: &str,
    depth: usize,
    guards: &mut Vec<Guard>,
    findings: &mut Vec<String>,
) {
    // Explicit early release.
    if let Some(rest) = code.trim().strip_prefix("drop(") {
        if let Some(name) = rest.strip_suffix(");") {
            let name = name.trim();
            if let Some(pos) = guards.iter().rposition(|g| g.name == name) {
                guards.remove(pos);
            }
        }
    }
    let mut acquisitions: Vec<(usize, u8)> = Vec::new();
    for pat in [".read()", ".write()"] {
        let mut from = 0;
        while let Some(off) = code[from..].find(pat) {
            let dot = from + off;
            acquisitions.push((dot, rwlock_level(code, dot)));
            from = dot + pat.len();
        }
    }
    let mut from = 0;
    while let Some(off) = code[from..].find(".lock()") {
        acquisitions.push((from + off, 3));
        from += off + ".lock()".len();
    }
    if acquisitions.is_empty() {
        return;
    }
    acquisitions.sort_unstable();
    for &(_, level) in &acquisitions {
        if let Some(held) = guards.iter().find(|g| g.level > level) {
            findings.push(format!(
                "{file}:{lineno}: acquires a level-{level} lock while the level-{} guard \
                 `{}` (line {}) is held — violates the directory → segment → bucket order",
                held.level, held.name, held.line
            ));
        }
    }
    // A `let`-bound guard stays held until its scope closes or `drop(name)`.
    let trimmed = code.trim();
    if let Some(rest) = trimmed.strip_prefix("let ") {
        let rest = rest.strip_prefix("mut ").unwrap_or(rest);
        let name: String = rest
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        // Highest level on the line is what the binding ends up holding
        // (chained accesses through lower-level guards are transient).
        if let Some(&(_, level)) = acquisitions.iter().max_by_key(|&&(_, l)| l) {
            if !name.is_empty() {
                guards.push(Guard {
                    depth,
                    level,
                    name,
                    line: lineno,
                });
            }
        }
    }
}

/// Strips string literals, char literals, and comments from a source line,
/// carrying block-comment state across lines. Returned text preserves token
/// adjacency well enough for the pattern scans above.
#[derive(Default)]
struct Stripper {
    in_block_comment: bool,
}

impl Stripper {
    fn strip(&mut self, line: &str) -> String {
        let bytes: Vec<char> = line.chars().collect();
        let mut out = String::with_capacity(line.len());
        let mut i = 0usize;
        while i < bytes.len() {
            if self.in_block_comment {
                if bytes[i] == '*' && bytes.get(i + 1) == Some(&'/') {
                    self.in_block_comment = false;
                    i += 2;
                } else {
                    i += 1;
                }
                continue;
            }
            match bytes[i] {
                '/' if bytes.get(i + 1) == Some(&'/') => break, // line comment
                '/' if bytes.get(i + 1) == Some(&'*') => {
                    self.in_block_comment = true;
                    i += 2;
                }
                '"' => {
                    out.push('"');
                    i += 1;
                    while i < bytes.len() {
                        match bytes[i] {
                            '\\' => i += 2,
                            '"' => {
                                out.push('"');
                                i += 1;
                                break;
                            }
                            _ => i += 1,
                        }
                    }
                }
                '\'' => {
                    // Char literal (skip it) vs lifetime tick (keep going).
                    let is_char_lit = match bytes.get(i + 1) {
                        Some('\\') => true,
                        Some(_) => bytes.get(i + 2) == Some(&'\''),
                        None => false,
                    };
                    if is_char_lit {
                        i += 1;
                        if bytes.get(i) == Some(&'\\') {
                            i += 2;
                        }
                        while i < bytes.len() && bytes[i] != '\'' {
                            i += 1;
                        }
                        i += 1;
                    } else {
                        out.push('\'');
                        i += 1;
                    }
                }
                c => {
                    out.push(c);
                    i += 1;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<String> {
        let mut findings = Vec::new();
        lint_file("f.rs", src, &mut findings);
        findings
    }

    #[test]
    fn unwrap_without_comment_flagged() {
        let f = run("fn a() { x.unwrap(); }\n");
        assert_eq!(f.len(), 1);
        assert!(f[0].contains("f.rs:1"), "{}", f[0]);
    }

    #[test]
    fn unwrap_with_invariant_comment_passes() {
        assert!(
            run("fn a() {\n    // invariant: x is Some here.\n    x.unwrap();\n}\n").is_empty()
        );
        assert!(run("fn a() { x.unwrap(); } // invariant: non-empty\n").is_empty());
    }

    #[test]
    fn comment_above_multiline_statement_justifies() {
        let src = "fn a() {\n    // invariant: chan is open.\n    tx.send(x)\n        .expect(\"alive\");\n}\n";
        assert!(run(src).is_empty());
        let src = "fn a() {\n    tx.send(x)\n        .expect(\"alive\");\n}\n";
        assert_eq!(run(src).len(), 1);
    }

    #[test]
    fn expect_in_test_module_ignored() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.expect(\"boom\"); }\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn expect_after_test_module_still_flagged() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn lib() { x.expect(\"boom\"); }\n";
        assert_eq!(run(src).len(), 1);
    }

    #[test]
    fn relaxed_without_comment_flagged() {
        let f = run("fn a() { c.fetch_add(1, Ordering::Relaxed); }\n");
        assert_eq!(f.len(), 1);
        assert!(f[0].contains("Relaxed"));
    }

    #[test]
    fn relaxed_with_comment_passes() {
        let src = "fn a() {\n    // relaxed: monotonic stats counter.\n    c.fetch_add(1, Ordering::Relaxed);\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn patterns_inside_strings_and_comments_ignored() {
        let src =
            "fn a() {\n    let s = \".unwrap()\";\n    /* x.unwrap() */\n    let t = 'x';\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn lock_order_violation_flagged() {
        let src = "fn a(&self) {\n    let seg = e.write();\n    let dir = self.dir.read();\n}\n";
        let f = run(src);
        assert_eq!(f.len(), 1);
        assert!(f[0].contains("f.rs:3"), "{}", f[0]);
        assert!(f[0].contains("level-1"), "{}", f[0]);
    }

    #[test]
    fn lock_order_correct_sequence_passes() {
        let src = "fn a(&self) {\n    let dir = self.dir.read();\n    let seg = dir.entries[0].write();\n    let b = seg.buckets[0].lock();\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn lock_order_resets_across_scopes() {
        let src = "fn a(&self) {\n    {\n        let seg = e.write();\n    }\n    let dir = self.dir.read();\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn drop_releases_guard() {
        let src = "fn a(&self) {\n    let seg = e.write();\n    drop(seg);\n    let dir = self.dir.read();\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn mutex_then_rwlock_flagged() {
        let src = "fn a(&self) {\n    let g = m.lock();\n    let r = other.read();\n}\n";
        let f = run(src);
        assert_eq!(f.len(), 1);
        assert!(f[0].contains("level-2"), "{}", f[0]);
    }

    #[test]
    fn io_read_write_with_args_not_lock_acquisitions() {
        let src = "fn a() {\n    w.write_all(&buf);\n    r.read(&mut buf);\n}\n";
        assert!(run(src).is_empty());
    }
}
