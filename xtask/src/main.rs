//! CLI for the workspace lint engine: `cargo run -p xtask -- lint`.
//!
//! The rules, source-set collection, and diagnostics all live in
//! `xtask::lint` (see `src/lint/mod.rs` and DESIGN.md §12); this binary
//! only resolves the workspace root and maps findings to an exit code.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use xtask::lint;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let findings = lint::run(&workspace_root());
            if findings.is_empty() {
                println!("xtask lint: clean ({} rules)", lint::rule_count());
                ExitCode::SUCCESS
            } else {
                for f in &findings {
                    eprintln!("{f}");
                }
                eprintln!("xtask lint: {} finding(s)", findings.len());
                ExitCode::FAILURE
            }
        }
        _ => {
            eprintln!("usage: cargo run -p xtask -- lint");
            ExitCode::from(2)
        }
    }
}

fn workspace_root() -> PathBuf {
    // xtask sits directly under the workspace root.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().map(Path::to_path_buf).unwrap_or(manifest)
}
