//! Dependency-free workspace tooling. The library target exists so the
//! fixture suite under `tests/` can drive individual lint rules; the
//! `xtask` binary (`src/main.rs`) is the CLI.

pub mod lint;

#[cfg(test)]
mod tests {
    use crate::lint::rules::{
        lock_order::LockOrder, panic_sites::PanicSites, relaxed_atomics::RelaxedAtomics,
    };
    use crate::lint::{FileClass, Rule, SourceFile};

    /// The original three rules over a synthetic library file — the
    /// pre-refactor engine's behavior, kept as regression tests.
    fn run(src: &str) -> Vec<String> {
        let file = SourceFile::parse("f.rs", "core", FileClass::Library, src);
        let mut findings = Vec::new();
        for rule in [
            Box::new(PanicSites) as Box<dyn Rule>,
            Box::new(RelaxedAtomics),
            Box::new(LockOrder),
        ] {
            rule.check(&file, &mut findings);
        }
        findings
    }

    #[test]
    fn unwrap_without_comment_flagged() {
        let f = run("fn a() { x.unwrap(); }\n");
        assert_eq!(f.len(), 1);
        assert!(f[0].contains("f.rs:1"), "{}", f[0]);
    }

    #[test]
    fn unwrap_with_invariant_comment_passes() {
        assert!(
            run("fn a() {\n    // invariant: x is Some here.\n    x.unwrap();\n}\n").is_empty()
        );
        assert!(run("fn a() { x.unwrap(); } // invariant: non-empty\n").is_empty());
    }

    #[test]
    fn comment_above_multiline_statement_justifies() {
        let src = "fn a() {\n    // invariant: chan is open.\n    tx.send(x)\n        .expect(\"alive\");\n}\n";
        assert!(run(src).is_empty());
        let src = "fn a() {\n    tx.send(x)\n        .expect(\"alive\");\n}\n";
        assert_eq!(run(src).len(), 1);
    }

    #[test]
    fn expect_in_test_module_ignored() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.expect(\"boom\"); }\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn expect_after_test_module_still_flagged() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn lib() { x.expect(\"boom\"); }\n";
        assert_eq!(run(src).len(), 1);
    }

    #[test]
    fn relaxed_without_comment_flagged() {
        let f = run("fn a() { c.fetch_add(1, Ordering::Relaxed); }\n");
        assert_eq!(f.len(), 1);
        assert!(f[0].contains("Relaxed"));
    }

    #[test]
    fn relaxed_with_comment_passes() {
        let src = "fn a() {\n    // relaxed: monotonic stats counter.\n    c.fetch_add(1, Ordering::Relaxed);\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn patterns_inside_strings_and_comments_ignored() {
        let src =
            "fn a() {\n    let s = \".unwrap()\";\n    /* x.unwrap() */\n    let t = 'x';\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn lock_order_violation_flagged() {
        let src = "fn a(&self) {\n    let seg = e.write();\n    let dir = self.dir.read();\n}\n";
        let f = run(src);
        assert_eq!(f.len(), 1);
        assert!(f[0].contains("f.rs:3"), "{}", f[0]);
        assert!(f[0].contains("level-1"), "{}", f[0]);
    }

    #[test]
    fn lock_order_correct_sequence_passes() {
        let src = "fn a(&self) {\n    let dir = self.dir.read();\n    let seg = dir.entries[0].write();\n    let b = seg.buckets[0].lock();\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn lock_order_resets_across_scopes() {
        let src = "fn a(&self) {\n    {\n        let seg = e.write();\n    }\n    let dir = self.dir.read();\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn drop_releases_guard() {
        let src = "fn a(&self) {\n    let seg = e.write();\n    drop(seg);\n    let dir = self.dir.read();\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn mutex_then_rwlock_flagged() {
        let src = "fn a(&self) {\n    let g = m.lock();\n    let r = other.read();\n}\n";
        let f = run(src);
        assert_eq!(f.len(), 1);
        assert!(f[0].contains("level-2"), "{}", f[0]);
    }

    #[test]
    fn io_read_write_with_args_not_lock_acquisitions() {
        let src = "fn a() {\n    w.write_all(&buf);\n    r.read(&mut buf);\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn lock_order_applies_to_integration_tests() {
        let src = "fn a() {\n    let g = m.lock();\n    let r = other.read();\n}\n";
        let file = SourceFile::parse("tests/t.rs", "workspace", FileClass::Test, src);
        let mut findings = Vec::new();
        LockOrder.check(&file, &mut findings);
        assert_eq!(findings.len(), 1);
    }
}
