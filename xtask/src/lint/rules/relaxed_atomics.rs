//! `Ordering::Relaxed` must carry a `// relaxed:` comment justifying why
//! no ordering is needed (pure counters only).

use crate::lint::{Rule, SourceFile};

pub struct RelaxedAtomics;

impl Rule for RelaxedAtomics {
    fn name(&self) -> &'static str {
        "relaxed-atomics"
    }

    fn check(&self, file: &SourceFile, findings: &mut Vec<String>) {
        for (i, code) in file.code_lines.iter().enumerate() {
            if file.in_test[i] {
                continue;
            }
            if code.contains("Ordering::Relaxed") && !file.justified(i, "relaxed:") {
                findings.push(format!(
                    "{}:{}: [{}] `Ordering::Relaxed` without a `// relaxed:` justification \
                     (use Acquire/Release when the value is read back for accounting)",
                    file.rel_path,
                    i + 1,
                    self.name(),
                ));
            }
        }
    }
}
