//! The rule registry. Adding a rule = one module + one line in [`all`]
//! (or [`all_manifest`] for `Cargo.toml` lints).

pub mod dependency_policy;
pub mod fsync_before_rename;
pub mod lock_across_io;
pub mod lock_order;
pub mod panic_sites;
pub mod relaxed_atomics;
pub mod truncating_casts;
pub mod unbounded_retry;
pub mod unsafe_blocks;

use crate::lint::{ManifestRule, Rule};

/// Every source-file rule, in diagnostic-stability order.
pub fn all() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(panic_sites::PanicSites),
        Box::new(relaxed_atomics::RelaxedAtomics),
        Box::new(lock_order::LockOrder),
        Box::new(lock_across_io::LockAcrossIo),
        Box::new(fsync_before_rename::FsyncBeforeRename),
        Box::new(unsafe_blocks::UnsafeBlocks),
        Box::new(truncating_casts::TruncatingCasts),
        Box::new(unbounded_retry::UnboundedRetry),
    ]
}

/// Every manifest rule.
pub fn all_manifest() -> Vec<Box<dyn ManifestRule>> {
    vec![Box::new(dependency_policy::DependencyPolicy)]
}
