//! Publishing a file by rename without first syncing its contents is the
//! textbook crash-consistency bug: after a crash the new name can point
//! at a zero-length or partially written file. Every `fs::rename` in
//! library code must be preceded — within the same function — by a
//! `sync_all`/`sync_data` on the temporary, or carry a `// justified:`
//! comment (e.g. renames of files that are re-verified on recovery).

use crate::lint::{FileClass, Rule, SourceFile};

pub struct FsyncBeforeRename;

impl Rule for FsyncBeforeRename {
    fn name(&self) -> &'static str {
        "fsync-before-rename"
    }

    fn applies(&self, file: &SourceFile) -> bool {
        matches!(file.class, FileClass::Library | FileClass::Example)
    }

    fn check(&self, file: &SourceFile, findings: &mut Vec<String>) {
        for (i, code) in file.code_lines.iter().enumerate() {
            if file.in_test[i] || !code.contains("fs::rename(") {
                continue;
            }
            if file.justified(i, "justified:") {
                continue;
            }
            // Scan backwards through the enclosing function for a content
            // sync. The function head is the nearest preceding `fn ` line
            // at or below the rename's indentation.
            let indent = indent_of(code);
            let mut synced = false;
            for j in (0..i).rev() {
                let above = &file.code_lines[j];
                if above.contains("sync_all(") || above.contains("sync_data(") {
                    synced = true;
                    break;
                }
                let t = above.trim_start();
                if (t.starts_with("fn ") || t.starts_with("pub fn ") || t.contains(" fn "))
                    && indent_of(above) < indent
                {
                    break;
                }
            }
            if !synced {
                findings.push(format!(
                    "{}:{}: [{}] `fs::rename` with no preceding `sync_all`/`sync_data` in \
                     this function — a crash can publish an unsynced file (add the fsync \
                     or a `// justified:` comment)",
                    file.rel_path,
                    i + 1,
                    self.name(),
                ));
            }
        }
    }
}

fn indent_of(line: &str) -> usize {
    line.len() - line.trim_start().len()
}
