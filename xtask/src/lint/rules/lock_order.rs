//! Guards acquired in a scope must follow the documented directory →
//! segment → bucket order: directory/root locks (level 1) before other
//! RwLocks (level 2) before `.lock()` mutexes (level 3). Acquiring a
//! lower-level lock while a higher-level guard from the same scope is
//! live is reported.

use crate::lint::guards::{acquisitions, GuardTracker};
use crate::lint::{FileClass, Rule, SourceFile};

pub struct LockOrder;

impl Rule for LockOrder {
    fn name(&self) -> &'static str {
        "lock-order"
    }

    /// Ordering bugs in tests and benches deadlock CI just as hard as in
    /// shipping code, so only examples (which hold one lock at a time by
    /// construction) are out of scope.
    fn applies(&self, file: &SourceFile) -> bool {
        file.class != FileClass::Example
    }

    fn check(&self, file: &SourceFile, findings: &mut Vec<String>) {
        let mut tracker = GuardTracker::default();
        for (i, code) in file.code_lines.iter().enumerate() {
            let acqs = if file.in_test[i] && file.class == FileClass::Library {
                Vec::new() // unit-test modules keep their own conventions
            } else {
                acquisitions(code)
            };
            for &(_, level) in &acqs {
                if let Some(held) = tracker.guards.iter().find(|g| g.level > level) {
                    findings.push(format!(
                        "{}:{}: [{}] acquires a level-{level} lock while the level-{} guard \
                         `{}` (line {}) is held — violates the directory → segment → bucket order",
                        file.rel_path,
                        i + 1,
                        self.name(),
                        held.level,
                        held.name,
                        held.line
                    ));
                }
            }
            tracker.observe(code, i + 1, &acqs);
        }
    }
}
