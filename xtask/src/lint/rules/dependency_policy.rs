//! The workspace builds fully offline: every external crate is a
//! vendored shim under `compat/`, wired through `[workspace.dependencies]`
//! as a path dependency. This rule keeps that closed-world property from
//! regressing:
//!
//! 1. `[workspace.dependencies]` entries must be `path = …` — a version
//!    or git requirement would reach for the network.
//! 2. Member dependency sections may only reference the workspace table
//!    (`x.workspace = true`) or a path — no inline registry versions.
//! 3. Test-only machinery stays out of shipping builds: `proptest` and
//!    `criterion` are dev-dependency-only, and `loom` may appear only
//!    under a `[target.'cfg(loom)'.dependencies]` table (or as a
//!    dev-dependency of its own shim).

use crate::lint::ManifestRule;

/// Crates that must never ship in a normal (non-dev, non-loom) build.
const DEV_ONLY: &[&str] = &["proptest", "criterion"];

pub struct DependencyPolicy;

#[derive(Clone, Copy, PartialEq)]
enum Section {
    WorkspaceDeps,
    Deps,
    DevDeps,
    BuildDeps,
    LoomTargetDeps,
    Other,
}

impl ManifestRule for DependencyPolicy {
    fn name(&self) -> &'static str {
        "dependency-policy"
    }

    fn check(&self, rel_path: &str, text: &str, findings: &mut Vec<String>) {
        let mut section = Section::Other;
        for (i, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if line.starts_with('[') {
                section = match line {
                    "[workspace.dependencies]" => Section::WorkspaceDeps,
                    "[dependencies]" => Section::Deps,
                    "[dev-dependencies]" => Section::DevDeps,
                    "[build-dependencies]" => Section::BuildDeps,
                    _ if line.starts_with("[target.") && line.ends_with(".dependencies]") => {
                        if line.contains("cfg(loom)") {
                            Section::LoomTargetDeps
                        } else {
                            Section::Deps
                        }
                    }
                    _ => Section::Other,
                };
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                continue;
            };
            // `x.workspace = true` entries: the dep name is before the dot.
            let key = key.trim();
            let (dep, is_workspace_key) = match key.split_once('.') {
                Some((dep, "workspace")) => (dep, true),
                _ => (key, false),
            };
            let value = value.trim();
            let via_workspace = is_workspace_key || value.contains("workspace = true");
            let via_path = value.contains("path =");
            match section {
                Section::WorkspaceDeps => {
                    if !via_path {
                        findings.push(format!(
                            "{rel_path}:{}: [{}] workspace dependency `{dep}` is not a \
                             path entry — the build must stay offline (vendor a shim \
                             under compat/)",
                            i + 1,
                            self.name(),
                        ));
                    }
                }
                Section::Deps | Section::DevDeps | Section::BuildDeps | Section::LoomTargetDeps => {
                    if !via_workspace && !via_path {
                        findings.push(format!(
                            "{rel_path}:{}: [{}] dependency `{dep}` bypasses the \
                             workspace table — use `{dep}.workspace = true`",
                            i + 1,
                            self.name(),
                        ));
                    }
                    let shippable = matches!(section, Section::Deps | Section::BuildDeps);
                    if shippable && DEV_ONLY.contains(&dep) {
                        findings.push(format!(
                            "{rel_path}:{}: [{}] `{dep}` is test-only machinery and \
                             must be a dev-dependency",
                            i + 1,
                            self.name(),
                        ));
                    }
                    if shippable && dep == "loom" {
                        findings.push(format!(
                            "{rel_path}:{}: [{}] `loom` must live under \
                             `[target.'cfg(loom)'.dependencies]` so ordinary builds \
                             never compile the model-checking shim",
                            i + 1,
                            self.name(),
                        ));
                    }
                }
                Section::Other => {}
            }
        }
    }
}
