//! A bare `loop` that re-acquires locks or retries a CAS with neither a
//! bound nor a backoff can livelock under contention and turns a logic
//! bug (the retry condition never clears) into a hang instead of a
//! panic. Retry loops in library code must show evidence of a bound
//! (`assert!` on an attempt counter), a blocking wait (condvar `.wait`),
//! or a backoff (`sleep`/`yield_now`/`spin_loop`) — or carry a
//! `// justified:` termination argument.
//!
//! Seqlock validate loops count as retry loops too: an optimistic read
//! that re-loads a version counter or spins on `try_read`/`try_lock`
//! until validation succeeds (DESIGN.md §14) livelocks just as readily
//! when a writer keeps the version moving, so the same bound/fallback
//! evidence is required.

use crate::lint::guards::acquisitions;
use crate::lint::strip::contains_word;
use crate::lint::{Rule, SourceFile};

/// Body text that makes a `loop` a *retry* loop worth scrutiny.
fn is_retry_op(code: &str) -> bool {
    !acquisitions(code).is_empty()
        || code.contains("compare_exchange")
        || code.contains("fetch_update")
        // Seqlock validation: re-loading a version counter or retrying a
        // non-blocking lock acquisition until it sticks.
        || code.contains("version.load(")
        || code.contains("try_read(")
        || code.contains("try_write(")
        || code.contains("try_lock(")
}

/// Body text accepted as a bound or backoff.
const BOUND_EVIDENCE: &[&str] = &[
    "assert!",
    "debug_assert!",
    ".wait(",
    "sleep(",
    "yield_now",
    "spin_loop",
    "backoff",
    ".park(",
    "park_timeout",
    ".recv(",
];

pub struct UnboundedRetry;

impl Rule for UnboundedRetry {
    fn name(&self) -> &'static str {
        "unbounded-retry"
    }

    fn check(&self, file: &SourceFile, findings: &mut Vec<String>) {
        for (i, code) in file.code_lines.iter().enumerate() {
            if file.in_test[i] || !is_loop_head(code) {
                continue;
            }
            // Body = lines until the `loop`'s brace closes.
            let mut depth = 0i64;
            let mut opened = false;
            let mut retry = false;
            let mut bounded = false;
            'body: for body in &file.code_lines[i..] {
                for c in body.chars() {
                    match c {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => {
                            depth -= 1;
                            if opened && depth <= 0 {
                                break 'body;
                            }
                        }
                        _ => {}
                    }
                }
                if opened {
                    retry |= is_retry_op(body);
                    bounded |= BOUND_EVIDENCE.iter().any(|p| body.contains(p));
                }
            }
            if retry && !bounded && !file.justified(i, "justified:") {
                findings.push(format!(
                    "{}:{}: [{}] `loop` retries a lock/CAS with no bound or backoff — \
                     add an attempt bound, a blocking wait, or a `// justified:` \
                     termination argument",
                    file.rel_path,
                    i + 1,
                    self.name(),
                ));
            }
        }
    }
}

/// A statement opening an unconditional `loop` block (plain, labeled, or
/// `let x = loop {`).
fn is_loop_head(code: &str) -> bool {
    contains_word(code, "loop") && code.trim_end().ends_with('{')
}
