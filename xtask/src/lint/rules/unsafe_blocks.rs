//! `unsafe` is forbidden by default across the workspace. Two crates are
//! sanctioned exceptions: `crates/core` (the epoch collector in
//! `epoch.rs`, deferred reclamation; the SIMD probe kernels in `simd.rs`,
//! CPU intrinsics behind runtime feature detection) and `crates/kvstore`
//! (the poll(2)/self-pipe FFI wrapper in `reactor.rs` that the
//! thread-per-core server's event loops stand on). There, each site must
//! still carry a `// justified:` comment stating the safety argument.
//! Everywhere else the finding is unconditional — extend
//! [`ALLOWLISTED_CRATE_DIRS`] deliberately, in review, rather than
//! sprinkling comments.

use crate::lint::strip::contains_word;
use crate::lint::{Rule, SourceFile};

/// `crates/<dir>` components where justified `unsafe` is permitted.
const ALLOWLISTED_CRATE_DIRS: &[&str] = &["core", "kvstore"];

pub struct UnsafeBlocks;

impl Rule for UnsafeBlocks {
    fn name(&self) -> &'static str {
        "unsafe-blocks"
    }

    /// All classes: an unsound test helper corrupts the suite as surely
    /// as library code.
    fn applies(&self, _file: &SourceFile) -> bool {
        true
    }

    fn check(&self, file: &SourceFile, findings: &mut Vec<String>) {
        let allowlisted = ALLOWLISTED_CRATE_DIRS.contains(&file.crate_dir.as_str());
        for (i, code) in file.code_lines.iter().enumerate() {
            // `contains_word` keeps `unsafe_code` (lint attribute) from
            // matching; stripped lines keep strings/comments from matching.
            if !contains_word(code, "unsafe") {
                continue;
            }
            if allowlisted && file.justified(i, "justified:") {
                continue;
            }
            let hint = if allowlisted {
                "add a `// justified:` safety argument"
            } else {
                "this crate is not on the unsafe allowlist (see unsafe_blocks.rs)"
            };
            findings.push(format!(
                "{}:{}: [{}] `unsafe` — {hint}",
                file.rel_path,
                i + 1,
                self.name(),
            ));
        }
    }
}
