//! `.unwrap()` / `.expect(` in library code must carry a `// invariant:`
//! comment (same line or the block directly above) stating why the
//! failure is impossible.

use crate::lint::{Rule, SourceFile};

pub struct PanicSites;

impl Rule for PanicSites {
    fn name(&self) -> &'static str {
        "panic-sites"
    }

    fn check(&self, file: &SourceFile, findings: &mut Vec<String>) {
        for (i, code) in file.code_lines.iter().enumerate() {
            if file.in_test[i] {
                continue;
            }
            for pat in [".unwrap()", ".expect("] {
                if code.contains(pat) && !file.justified(i, "invariant:") {
                    findings.push(format!(
                        "{}:{}: [{}] `{pat}` in library code without an `// invariant:` \
                         justification (return an error or document why this cannot fail)",
                        file.rel_path,
                        i + 1,
                        self.name(),
                    ));
                }
            }
        }
    }
}
