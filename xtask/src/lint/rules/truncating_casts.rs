//! Narrowing `as` casts (`as u8` / `as u16` / `as u32`) in the
//! durability crate's framing and CRC code silently truncate: a length
//! that outgrows the field corrupts the record stream instead of
//! erroring. Sites must use `try_into` (or prove the range) and carry a
//! `// justified:` comment.

use crate::lint::{Rule, SourceFile};

/// `crates/<dir>` components whose on-disk framing makes truncation a
/// data-corruption bug rather than a cosmetic one.
const SCOPED_CRATE_DIRS: &[&str] = &["durability"];

pub struct TruncatingCasts;

impl Rule for TruncatingCasts {
    fn name(&self) -> &'static str {
        "truncating-casts"
    }

    fn applies(&self, file: &SourceFile) -> bool {
        file.class == crate::lint::FileClass::Library
            && SCOPED_CRATE_DIRS.contains(&file.crate_dir.as_str())
    }

    fn check(&self, file: &SourceFile, findings: &mut Vec<String>) {
        for (i, code) in file.code_lines.iter().enumerate() {
            if file.in_test[i] {
                continue;
            }
            for pat in ["as u8", "as u16", "as u32"] {
                if has_cast(code, pat) && !file.justified(i, "justified:") {
                    findings.push(format!(
                        "{}:{}: [{}] narrowing `{pat}` in durability framing — use \
                         `try_into` or add a `// justified:` range argument",
                        file.rel_path,
                        i + 1,
                        self.name(),
                    ));
                }
            }
        }
    }
}

/// `pat` present with a word boundary after it (`as u32` must not match
/// inside `as u32x4` if SIMD types ever appear) and `as` as its own word.
fn has_cast(code: &str, pat: &str) -> bool {
    let mut from = 0;
    while let Some(off) = code[from..].find(pat) {
        let start = from + off;
        let end = start + pat.len();
        let before_ok = start == 0
            || !code[..start]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after_ok = !code[end..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        from = end;
    }
    false
}
