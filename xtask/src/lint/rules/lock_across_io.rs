//! Blocking file or socket I/O while a lock guard is live stalls every
//! thread queued on that lock for the duration of the syscall — the
//! classic tail-latency cliff. Sites that genuinely need it (the WAL's
//! group commit, drain force-closing registered sockets) carry a
//! `// justified:` comment explaining why the lock must span the I/O.

use crate::lint::guards::{acquisitions, GuardTracker};
use crate::lint::{FileClass, Rule, SourceFile};

/// Calls that hit the kernel: durability syncs, bulk reads/writes,
/// metadata ops, socket teardown, and the reactor's blocking waits
/// (`poll_events` parks the thread for up to the poll tick; `.wake(`
/// writes the self-pipe — see kvstore/src/reactor.rs).
const IO_PATTERNS: &[&str] = &[
    ".sync_all(",
    ".sync_data(",
    ".write_all(",
    ".read_exact(",
    ".flush(",
    "fs::rename(",
    "fs::remove_file(",
    "File::create(",
    "File::open(",
    ".accept(",
    ".shutdown(",
    ".fill_buf(",
    "poll_events(",
    ".wake(",
];

pub struct LockAcrossIo;

impl Rule for LockAcrossIo {
    fn name(&self) -> &'static str {
        "lock-across-io"
    }

    fn applies(&self, file: &SourceFile) -> bool {
        matches!(file.class, FileClass::Library | FileClass::Example)
    }

    fn check(&self, file: &SourceFile, findings: &mut Vec<String>) {
        let mut tracker = GuardTracker::default();
        for (i, code) in file.code_lines.iter().enumerate() {
            let acqs = if file.in_test[i] {
                Vec::new()
            } else {
                acquisitions(code)
            };
            if !file.in_test[i] && !tracker.guards.is_empty() {
                for pat in IO_PATTERNS {
                    if code.contains(pat) && !file.justified(i, "justified:") {
                        // invariant: the is_empty check above guarantees a guard.
                        let held = tracker.guards.last().unwrap();
                        findings.push(format!(
                            "{}:{}: [{}] `{pat}` while the lock guard `{}` (line {}) is \
                             held — move the I/O outside the critical section or add a \
                             `// justified:` comment",
                            file.rel_path,
                            i + 1,
                            self.name(),
                            held.name,
                            held.line
                        ));
                    }
                }
            }
            tracker.observe(code, i + 1, &acqs);
        }
    }
}
