//! Token-level preprocessing shared by every rule: comment/string
//! stripping and the justification-comment lookup.

/// Strips string literals, char literals, and comments from a source line,
/// carrying block-comment state across lines. Returned text preserves token
/// adjacency well enough for the pattern scans the rules perform.
#[derive(Default)]
pub struct Stripper {
    in_block_comment: bool,
}

impl Stripper {
    pub fn strip(&mut self, line: &str) -> String {
        let bytes: Vec<char> = line.chars().collect();
        let mut out = String::with_capacity(line.len());
        let mut i = 0usize;
        while i < bytes.len() {
            if self.in_block_comment {
                if bytes[i] == '*' && bytes.get(i + 1) == Some(&'/') {
                    self.in_block_comment = false;
                    i += 2;
                } else {
                    i += 1;
                }
                continue;
            }
            match bytes[i] {
                '/' if bytes.get(i + 1) == Some(&'/') => break, // line comment
                '/' if bytes.get(i + 1) == Some(&'*') => {
                    self.in_block_comment = true;
                    i += 2;
                }
                '"' => {
                    out.push('"');
                    i += 1;
                    while i < bytes.len() {
                        match bytes[i] {
                            '\\' => i += 2,
                            '"' => {
                                out.push('"');
                                i += 1;
                                break;
                            }
                            _ => i += 1,
                        }
                    }
                }
                '\'' => {
                    // Char literal (skip it) vs lifetime tick (keep going).
                    let is_char_lit = match bytes.get(i + 1) {
                        Some('\\') => true,
                        Some(_) => bytes.get(i + 2) == Some(&'\''),
                        None => false,
                    };
                    if is_char_lit {
                        i += 1;
                        if bytes.get(i) == Some(&'\\') {
                            i += 2;
                        }
                        while i < bytes.len() && bytes[i] != '\'' {
                            i += 1;
                        }
                        i += 1;
                    } else {
                        out.push('\'');
                        i += 1;
                    }
                }
                c => {
                    out.push(c);
                    i += 1;
                }
            }
        }
        out
    }
}

/// True when the flagged line, an earlier line of the same (possibly
/// multi-line) statement, or the contiguous `//` comment block directly
/// above that statement contains `marker`.
pub fn justified<S: AsRef<str>>(raw_lines: &[S], i: usize, marker: &str) -> bool {
    if raw_lines[i].as_ref().contains(marker) {
        return true;
    }
    // Walk up to the first line of the enclosing statement: a line is a
    // continuation while the line above it is code that does not end a
    // statement or open/close a block.
    let mut j = i;
    while j > 0 {
        let above = raw_lines[j - 1].as_ref().trim();
        if above.is_empty()
            || above.starts_with("//")
            || above.ends_with(';')
            || above.ends_with('{')
            || above.ends_with('}')
        {
            break;
        }
        j -= 1;
        if raw_lines[j].as_ref().contains(marker) {
            return true;
        }
    }
    while j > 0 {
        j -= 1;
        let t = raw_lines[j].as_ref().trim_start();
        if t.starts_with("//") {
            if t.contains(marker) {
                return true;
            }
        } else {
            break;
        }
    }
    false
}

/// True when `text` contains `word` delimited by non-identifier characters
/// on both sides (so `unsafe` does not match `unsafe_code`).
pub fn contains_word(text: &str, word: &str) -> bool {
    let mut from = 0;
    while let Some(off) = text[from..].find(word) {
        let start = from + off;
        let end = start + word.len();
        let before_ok = start == 0
            || !text[..start]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after_ok = !text[end..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        from = end;
    }
    false
}
