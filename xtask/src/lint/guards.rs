//! Scope-aware tracking of live lock guards, shared by the lock-order and
//! lock-across-I/O rules.
//!
//! The model is the workspace's documented two-level protocol: directory /
//! root locks (level 1, a `.read()`/`.write()` whose receiver ends in `dir`
//! or `inner`) before other RwLocks (level 2) before `.lock()` mutexes
//! (level 3). A `let`-bound acquisition stays live until its enclosing
//! scope closes or an explicit `drop(name)`.

/// A lock guard live in the current scope.
pub struct Guard {
    pub depth: usize,
    pub level: u8,
    pub name: String,
    pub line: usize,
}

/// Lock level of an acquisition ending at byte offset `dot` (the `.` of
/// `.read()`/`.write()`): 1 for directory/root locks, 2 otherwise.
fn rwlock_level(code: &str, dot: usize) -> u8 {
    let ident: String = code[..dot]
        .chars()
        .rev()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    let ident: String = ident.chars().rev().collect();
    if ident == "dir" || ident == "inner" {
        1
    } else {
        2
    }
}

/// Byte offsets and levels of every lock acquisition on a stripped line.
pub fn acquisitions(code: &str) -> Vec<(usize, u8)> {
    let mut out: Vec<(usize, u8)> = Vec::new();
    for pat in [".read()", ".write()"] {
        let mut from = 0;
        while let Some(off) = code[from..].find(pat) {
            let dot = from + off;
            out.push((dot, rwlock_level(code, dot)));
            from = dot + pat.len();
        }
    }
    let mut from = 0;
    while let Some(off) = code[from..].find(".lock()") {
        out.push((from + off, 3));
        from += off + ".lock()".len();
    }
    out.sort_unstable();
    out
}

/// Tracks brace depth and live guards across the lines of one file.
#[derive(Default)]
pub struct GuardTracker {
    pub depth: usize,
    pub guards: Vec<Guard>,
}

impl GuardTracker {
    /// Processes the acquisition/release effects of one stripped line.
    /// Call once per line, after the per-line checks that inspect
    /// `self.guards`, passing the acquisitions found on the line.
    pub fn observe(&mut self, code: &str, lineno: usize, acqs: &[(usize, u8)]) {
        // Explicit early release.
        if let Some(rest) = code.trim().strip_prefix("drop(") {
            if let Some(name) = rest.strip_suffix(");") {
                let name = name.trim();
                if let Some(pos) = self.guards.iter().rposition(|g| g.name == name) {
                    self.guards.remove(pos);
                }
            }
        }
        // A `let`-bound guard stays held until its scope closes or `drop`.
        let trimmed = code.trim();
        if let Some(rest) = trimmed.strip_prefix("let ") {
            let rest = rest.strip_prefix("mut ").unwrap_or(rest);
            let name: String = rest
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            // Highest level on the line is what the binding ends up holding
            // (chained accesses through lower-level guards are transient).
            if let Some(&(_, level)) = acqs.iter().max_by_key(|&&(_, l)| l) {
                if !name.is_empty() {
                    self.guards.push(Guard {
                        depth: self.depth,
                        level,
                        name,
                        line: lineno,
                    });
                }
            }
        }
        // Brace accounting closes scopes and retires their guards.
        for c in code.chars() {
            match c {
                '{' => self.depth += 1,
                '}' => {
                    self.depth = self.depth.saturating_sub(1);
                    let depth = self.depth;
                    self.guards.retain(|g| g.depth <= depth);
                }
                _ => {}
            }
        }
    }
}
