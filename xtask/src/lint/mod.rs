//! The workspace lint engine, invoked as `cargo run -p xtask -- lint`.
//!
//! Source files are collected from `crates/` (library sources *and*
//! per-crate `tests/`/`benches/`, including the `crates/bench` harness),
//! the workspace facade `src/`, the top-level `tests/`, and `examples/`.
//! The vendored `compat/` shims and xtask itself are exempt: the shims
//! deliberately mirror external APIs (poisoning `lock().unwrap()` idioms
//! and all), and linting the linter's own pattern tables would flag every
//! rule definition.
//!
//! Each file is preprocessed once into a [`SourceFile`] — raw lines,
//! comment/string-stripped lines, and a `#[cfg(test)]`-module mask — and
//! every [`Rule`] whose `applies` filter matches is run over it. Manifest
//! rules run over every workspace `Cargo.toml` (including `compat/`, so
//! the vendored-shim policy itself is checked). Findings are
//! `file:line: [rule] message`; any finding exits non-zero.
//!
//! Escape hatches are per-site comments, never global switches: the
//! original rules keep their dedicated `// invariant:` / `// relaxed:`
//! markers, and every newer rule accepts `// justified:` on the flagged
//! statement or the comment block directly above it. See DESIGN.md §12
//! for the catalogue.

pub mod guards;
pub mod rules;
pub mod strip;

use std::path::{Path, PathBuf};

/// Where a source file sits in the workspace; rules scope themselves by
/// class (e.g. panic-site justification applies to library code only).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileClass {
    /// Shipping code: `crates/*/src` and the workspace facade `src/`.
    Library,
    /// Integration tests: `tests/` at the root or under a crate.
    Test,
    /// Benchmark harnesses: `crates/bench` and any `benches/` dir.
    Bench,
    /// Runnable documentation under `examples/`.
    Example,
}

/// One preprocessed source file, shared by every rule.
pub struct SourceFile {
    /// Workspace-relative path, used in diagnostics.
    pub rel_path: String,
    /// The `crates/<name>` directory component (`"core"`, `"durability"`,
    /// …) or `"workspace"` for files outside `crates/`. Rules use this for
    /// crate-scoped policies (the SIMD `unsafe` allowlist, cast checks in
    /// durability framing).
    pub crate_dir: String,
    pub class: FileClass,
    pub raw_lines: Vec<String>,
    /// Comment/string/char-literal-stripped mirror of `raw_lines`.
    pub code_lines: Vec<String>,
    /// Per-line: inside a `#[cfg(test)] mod … { … }` block. Rules skip
    /// masked lines; unit tests embedded in library files follow test
    /// rules, not library rules.
    pub in_test: Vec<bool>,
}

impl SourceFile {
    pub fn parse(rel_path: &str, crate_dir: &str, class: FileClass, text: &str) -> SourceFile {
        let raw_lines: Vec<String> = text.lines().map(str::to_string).collect();
        let mut stripper = strip::Stripper::default();
        let code_lines: Vec<String> = raw_lines.iter().map(|l| stripper.strip(l)).collect();

        // Test-module mask: `#[cfg(...test...)] mod x { ... }`.
        let mut in_test = vec![false; code_lines.len()];
        let mut depth = 0usize;
        let mut pending_test_attr = false;
        let mut test_exit_depth: Option<usize> = None;
        for (i, code) in code_lines.iter().enumerate() {
            let trimmed = code.trim();
            if test_exit_depth.is_none() {
                if trimmed.starts_with("#[") {
                    if trimmed.contains("cfg(") && trimmed.contains("test") {
                        pending_test_attr = true;
                    }
                } else if !trimmed.is_empty() {
                    if pending_test_attr && trimmed.starts_with("mod ") && trimmed.contains('{') {
                        test_exit_depth = Some(depth);
                    }
                    pending_test_attr = false;
                }
            }
            in_test[i] = test_exit_depth.is_some();
            for c in code.chars() {
                match c {
                    '{' => depth += 1,
                    '}' => {
                        depth = depth.saturating_sub(1);
                        if test_exit_depth.is_some_and(|d| depth <= d) {
                            test_exit_depth = None;
                        }
                    }
                    _ => {}
                }
            }
        }

        SourceFile {
            rel_path: rel_path.to_string(),
            crate_dir: crate_dir.to_string(),
            class,
            raw_lines,
            code_lines,
            in_test,
        }
    }

    /// Shorthand: is the per-site escape hatch present at line index `i`?
    pub fn justified(&self, i: usize, marker: &str) -> bool {
        strip::justified(&self.raw_lines, i, marker)
    }
}

/// A single lint over one preprocessed source file.
pub trait Rule {
    fn name(&self) -> &'static str;
    /// Which files the rule scans. Default: library code only.
    fn applies(&self, file: &SourceFile) -> bool {
        file.class == FileClass::Library
    }
    fn check(&self, file: &SourceFile, findings: &mut Vec<String>);
}

/// A lint over one workspace `Cargo.toml`.
pub trait ManifestRule {
    fn name(&self) -> &'static str;
    fn check(&self, rel_path: &str, text: &str, findings: &mut Vec<String>);
}

/// Runs every rule over the widened source set rooted at `root`.
/// Returns the findings; prints nothing.
pub fn run(root: &Path) -> Vec<String> {
    let mut findings = Vec::new();
    let rules = rules::all();
    for file in collect_sources(root) {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .display()
            .to_string();
        let Ok(text) = std::fs::read_to_string(&file) else {
            findings.push(format!("{rel}: unreadable"));
            continue;
        };
        let source = SourceFile::parse(&rel, &crate_dir_of(&rel), classify(&rel), &text);
        for rule in &rules {
            if rule.applies(&source) {
                rule.check(&source, &mut findings);
            }
        }
    }
    let manifest_rules = rules::all_manifest();
    for manifest in collect_manifests(root) {
        let rel = manifest
            .strip_prefix(root)
            .unwrap_or(&manifest)
            .display()
            .to_string();
        let Ok(text) = std::fs::read_to_string(&manifest) else {
            findings.push(format!("{rel}: unreadable"));
            continue;
        };
        for rule in &manifest_rules {
            rule.check(&rel, &text, &mut findings);
        }
    }
    findings
}

/// Total number of distinct rules the engine runs (for the summary line).
pub fn rule_count() -> usize {
    rules::all().len() + rules::all_manifest().len()
}

/// The `crates/<name>` component of a workspace-relative path, or
/// `"workspace"` for root-level `src/`, `tests/`, `examples/`.
fn crate_dir_of(rel: &str) -> String {
    let mut parts = rel.split('/');
    if parts.next() == Some("crates") {
        if let Some(name) = parts.next() {
            return name.to_string();
        }
    }
    "workspace".to_string()
}

/// File class from the workspace-relative path.
fn classify(rel: &str) -> FileClass {
    if rel.starts_with("crates/bench/") || rel.contains("/benches/") {
        FileClass::Bench
    } else if rel.starts_with("tests/") || rel.contains("/tests/") {
        FileClass::Test
    } else if rel.starts_with("examples/") || rel.contains("/examples/") {
        FileClass::Example
    } else {
        FileClass::Library
    }
}

/// Collects `.rs` sources: all of `crates/` (library, tests, benches —
/// only build output is skipped) plus the workspace `src/`, `tests/`, and
/// `examples/`. `compat/` and `xtask/` are exempt (see module docs).
pub fn collect_sources(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    for top in ["crates", "src", "tests", "examples"] {
        walk_rs(&root.join(top), &mut out);
    }
    out
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default();
        if path.is_dir() {
            if name != "target" && !name.starts_with('.') {
                walk_rs(&path, out);
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Every workspace manifest: root, `crates/*`, `compat/*`, and xtask.
pub fn collect_manifests(root: &Path) -> Vec<PathBuf> {
    let mut out = vec![root.join("Cargo.toml"), root.join("xtask/Cargo.toml")];
    for member_dir in ["crates", "compat"] {
        let Ok(entries) = std::fs::read_dir(root.join(member_dir)) else {
            continue;
        };
        let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
        entries.sort();
        for path in entries {
            let manifest = path.join("Cargo.toml");
            if manifest.is_file() {
                out.push(manifest);
            }
        }
    }
    out
}
