//! Offline drop-in replacement for the subset of the `rand` 0.8 API this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so every external
//! dependency is vendored as a small path crate under `compat/`. This crate
//! provides `StdRng` (xoshiro256++ seeded via SplitMix64), the `Rng` /
//! `RngCore` / `SeedableRng` traits, and uniform sampling over integer and
//! float ranges — exactly the surface exercised by the dataset generators,
//! YCSB workloads, benches, and examples. Streams are deterministic for a
//! given seed but are *not* bit-compatible with upstream `rand`.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 step — used to expand a 64-bit seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types that can be sampled from the "standard" distribution
/// (full-range integers, `[0, 1)` floats, fair bools).
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that `Rng::gen_range` can sample uniformly.
pub trait SampleRange<T> {
    /// Draws one value from `rng`, uniform over the range.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased-enough uniform integer in `[0, span)` via 128-bit widening
/// multiply (Lemire); the modulo bias is < 2⁻⁶⁴ per draw, irrelevant for
/// synthetic datasets and tests.
fn uniform_u64(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    (((rng.next_u64() as u128) * (span as u128)) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as StandardSample>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let unit = <$t as StandardSample>::sample_standard(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// User-facing convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_range(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman/Vigna).
    /// Fast, 256-bit state, passes BigCrush; plenty for synthetic data.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce four zero outputs in a row, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub use rngs::StdRng as DefaultRng;

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: u64 = rng.gen_range(60..7200);
            assert!((60..7200).contains(&x));
            let y: usize = rng.gen_range(0..=5);
            assert!(y <= 5);
            let f: f64 = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&f));
            let g: f64 = rng.gen_range(-80.0..-40.0);
            assert!((-80.0..-40.0).contains(&g));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn uniform_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }
}
