//! Offline drop-in replacement for the subset of `criterion` 0.5 this
//! workspace's benches use: `Criterion::benchmark_group`, `sample_size`,
//! `bench_function`, `Bencher::iter` / `iter_batched`, `BatchSize`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is deliberately simple — wall-clock samples with a short
//! warm-up, reporting min / median / mean — because the point of this shim
//! is to keep the bench targets compiling and runnable without crates.io
//! access, not to reproduce criterion's statistical machinery. Numbers it
//! prints are indicative, not publication-grade.

use std::time::{Duration, Instant};

/// How batched inputs are grouped per measurement; only the variants the
/// workspace uses are provided. The shim times one routine call per sample
/// regardless of variant, so the distinction only documents intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small setup output; criterion would batch many per allocation.
    SmallInput,
    /// Large setup output; criterion would batch few per allocation.
    LargeInput,
}

/// Timing loop handle passed to `bench_function` closures.
pub struct Bencher {
    samples: usize,
    /// Per-sample durations of the most recent run.
    times: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            times: Vec::with_capacity(samples),
        }
    }

    /// Times `routine` over `samples` samples; each sample is one call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: one untimed call.
        let _ = routine();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            let out = routine();
            self.times.push(t0.elapsed());
            drop(out);
        }
    }

    /// Times `routine` over freshly set-up inputs, excluding setup cost.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let _ = routine(setup());
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            let out = routine(input);
            self.times.push(t0.elapsed());
            drop(out);
        }
    }
}

/// A named set of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark and prints a one-line summary.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        let mut times = b.times;
        if times.is_empty() {
            println!("{}/{}: no samples recorded", self.name, id);
            return self;
        }
        times.sort_unstable();
        let min = times[0];
        let median = times[times.len() / 2];
        let total: Duration = times.iter().sum();
        let mean = total / times.len() as u32;
        println!(
            "{}/{}: min {} · median {} · mean {} ({} samples)",
            self.name,
            id,
            fmt_dur(min),
            fmt_dur(median),
            fmt_dur(mean),
            times.len(),
        );
        self
    }

    /// Ends the group. The shim prints eagerly, so this is a no-op.
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Accepted for API compatibility; the shim ignores CLI arguments
    /// (cargo-bench passes `--bench`).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _parent: self,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }

    /// Prints the closing banner; called by `criterion_main!`.
    pub fn final_summary(&self) {
        println!("(criterion shim: wall-clock timings, indicative only)");
    }
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

/// Declares `main()` running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        let mut calls = 0u32;
        g.sample_size(5).bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        g.finish();
        // 5 measured samples + 1 warm-up.
        assert_eq!(calls, 6);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3).bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 8],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
    }
}
