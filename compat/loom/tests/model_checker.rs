//! Self-tests of the vendored loom shim: the explorer must find classic
//! interleaving bugs (non-vacuity) and must accept correct protocols.

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::{Arc, Mutex, RwLock};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Runs `f` under the model and returns the panic message, if any.
fn model_fails<F: Fn() + Send + Sync + 'static>(f: F) -> Option<String> {
    catch_unwind(AssertUnwindSafe(|| loom::model(f)))
        .err()
        .map(|p| {
            p.downcast_ref::<String>()
                .cloned()
                .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "<non-string panic>".to_string())
        })
}

#[test]
fn torn_read_modify_write_is_caught() {
    // Two threads increment via separate load + store: the model must find
    // the schedule where one increment is lost.
    let msg = model_fails(|| {
        let c = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&c);
        let t = loom::thread::spawn(move || {
            let v = c2.load(Ordering::SeqCst);
            c2.store(v + 1, Ordering::SeqCst);
        });
        let v = c.load(Ordering::SeqCst);
        c.store(v + 1, Ordering::SeqCst);
        t.join().unwrap();
        assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
    });
    let msg = msg.expect("model must catch the torn RMW");
    assert!(msg.contains("lost update"), "unexpected failure: {msg}");
}

#[test]
fn atomic_fetch_add_passes() {
    loom::model(|| {
        let c = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&c);
        let t = loom::thread::spawn(move || {
            c2.fetch_add(1, Ordering::SeqCst);
        });
        c.fetch_add(1, Ordering::SeqCst);
        t.join().unwrap();
        assert_eq!(c.load(Ordering::SeqCst), 2);
    });
}

#[test]
fn mutex_protected_increment_passes() {
    loom::model(|| {
        let c = Arc::new(Mutex::new(0usize));
        let c2 = Arc::clone(&c);
        let t = loom::thread::spawn(move || {
            let mut g = c2.lock();
            *g += 1;
        });
        {
            let mut g = c.lock();
            *g += 1;
        }
        t.join().unwrap();
        assert_eq!(*c.lock(), 2);
    });
}

#[test]
fn unlocked_two_field_invariant_is_caught() {
    // A writer updates two atomics that a reader expects to be equal; the
    // model must find the schedule that observes the half-done write.
    let msg = model_fails(|| {
        let a = Arc::new(AtomicUsize::new(0));
        let b = Arc::new(AtomicUsize::new(0));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = loom::thread::spawn(move || {
            a2.store(1, Ordering::SeqCst);
            b2.store(1, Ordering::SeqCst);
        });
        let read_a = a.load(Ordering::SeqCst);
        let read_b = b.load(Ordering::SeqCst);
        // The writer stores a then b; a reader that runs between the two
        // stores observes the torn state a=1, b=0.
        assert!(!(read_a == 1 && read_b == 0), "torn pair observed");
        t.join().unwrap();
    });
    let msg = msg.expect("model must find the schedule between the stores");
    assert!(msg.contains("torn pair"), "unexpected failure: {msg}");
}

#[test]
fn rwlock_write_invariant_passes() {
    loom::model(|| {
        let pair = Arc::new(RwLock::new((0usize, 0usize)));
        let p2 = Arc::clone(&pair);
        let t = loom::thread::spawn(move || {
            let mut g = p2.write();
            g.0 += 1;
            g.1 += 1;
        });
        {
            let g = pair.read();
            assert_eq!(g.0, g.1, "reader saw a half-done write");
        }
        t.join().unwrap();
        let g = pair.read();
        assert_eq!((g.0, g.1), (1, 1));
    });
}

#[test]
fn abba_deadlock_is_caught() {
    let msg = model_fails(|| {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = loom::thread::spawn(move || {
            let _ga = a2.lock();
            let _gb = b2.lock();
        });
        let _gb = b.lock();
        let _ga = a.lock();
        drop((_ga, _gb));
        t.join().unwrap();
    });
    let msg = msg.expect("model must catch the ABBA deadlock");
    assert!(msg.contains("deadlock"), "unexpected failure: {msg}");
}

#[test]
fn three_thread_counter_passes() {
    loom::model(|| {
        let c = Arc::new(Mutex::new(0usize));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let c = Arc::clone(&c);
                loom::thread::spawn(move || {
                    *c.lock() += 1;
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*c.lock(), 3);
    });
}

#[test]
fn join_returns_value() {
    loom::model(|| {
        let t = loom::thread::spawn(|| 41 + 1);
        assert_eq!(t.join().unwrap(), 42);
    });
}

#[test]
fn yield_lets_partner_progress() {
    // A flag-wait loop that yields must terminate: the scheduler has to
    // run the setter eventually instead of spinning the waiter forever.
    loom::model(|| {
        let flag = Arc::new(AtomicUsize::new(0));
        let f2 = Arc::clone(&flag);
        let t = loom::thread::spawn(move || {
            f2.store(1, Ordering::SeqCst);
        });
        while flag.load(Ordering::SeqCst) == 0 {
            loom::thread::yield_now();
        }
        t.join().unwrap();
    });
}

#[test]
fn primitives_work_outside_model() {
    // Fallback mode: no scheduler, plain std behavior.
    let m = Mutex::new(1);
    *m.lock() += 1;
    assert_eq!(*m.lock(), 2);
    let l = RwLock::new(3);
    assert_eq!(*l.read(), 3);
    *l.write() += 1;
    assert_eq!(*l.read(), 4);
    let a = AtomicUsize::new(0);
    a.fetch_add(5, Ordering::Relaxed);
    assert_eq!(a.load(Ordering::Acquire), 5);
    let t = loom::thread::spawn(|| 7);
    assert_eq!(t.join().unwrap(), 7);
}
