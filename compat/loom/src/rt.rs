//! The exploration runtime: a single-token scheduler plus a depth-first
//! search over its decision points.
//!
//! One OS thread per model thread, but only the token holder ever runs;
//! every synchronization primitive calls [`Rt::switch`] which hands the
//! token to the next thread chosen by the schedule under exploration.
//! Sequential consistency falls out of the serialization; see the crate
//! docs for what that does and does not cover.

use std::any::Any;
use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, Once, PoisonError};

pub(crate) type Tid = usize;

/// Panic payload used to tear down the remaining threads of a poisoned
/// (already-failed) execution; the panic hook suppresses its output so the
/// only message the user sees is the original failure.
pub(crate) struct SchedPoisoned;

const DEFAULT_MAX_PREEMPTIONS: usize = 2;
const DEFAULT_MAX_SCHEDULES: usize = 200_000;
/// Per-execution bound on scheduling points; tripping it means a livelock
/// (e.g. an unbounded spin that never lets the other threads finish).
const MAX_STEPS: usize = 500_000;

/// What a thread wants to do at its current scheduling point.
#[derive(Clone, Copy, PartialEq, Debug)]
pub(crate) enum Intent {
    /// Unconditional step: atomic op, fence, spawn, or thread start.
    Step,
    /// Voluntary yield: deprioritized, never counts as a preemption.
    Yield,
    /// Acquire lock `id` exclusively (mutex lock / rwlock write).
    Acquire(u64),
    /// Acquire lock `id` shared (rwlock read).
    AcquireShared(u64),
    /// Wait for thread `tid` to finish.
    Join(Tid),
}

#[derive(Clone, Copy, PartialEq)]
enum Run {
    /// Parked at a scheduling point, waiting for the token.
    Waiting(Intent),
    /// Holds the token; executes until its next scheduling point.
    Running,
    Finished,
}

#[derive(Default)]
struct LockState {
    writer: Option<Tid>,
    readers: usize,
}

/// One decision: (chosen option index, number of options). Recording the
/// option count lets the DFS backtrack without re-deriving eligibility.
type Choice = (u32, u32);

struct State {
    threads: Vec<Run>,
    current: Tid,
    locks: HashMap<u64, LockState>,
    schedule: Vec<Choice>,
    cursor: usize,
    preemptions: usize,
    max_preemptions: usize,
    steps: usize,
    live: usize,
    poisoned: bool,
    panic_payload: Option<Box<dyn Any + Send>>,
}

pub(crate) struct Rt {
    state: Mutex<State>,
    cv: Condvar,
}

thread_local! {
    static CTX: RefCell<Option<(Arc<Rt>, Tid)>> = const { RefCell::new(None) };
}

/// The calling thread's model context, if it runs under [`model`].
pub(crate) fn current() -> Option<(Arc<Rt>, Tid)> {
    CTX.with(|c| c.borrow().clone())
}

fn set_ctx(ctx: Option<(Arc<Rt>, Tid)>) {
    CTX.with(|c| *c.borrow_mut() = ctx);
}

enum Decision {
    Next(Tid),
    /// No live thread is eligible: deadlock.
    Dead,
    /// Replay diverged from the recorded schedule: the model closure is
    /// nondeterministic (time, randomness, ambient threads).
    Corrupt,
}

impl Rt {
    fn new(prefix: Vec<Choice>, max_preemptions: usize) -> Self {
        Rt {
            state: Mutex::new(State {
                threads: vec![Run::Running],
                current: 0,
                locks: HashMap::new(),
                schedule: prefix,
                cursor: 0,
                preemptions: 0,
                max_preemptions,
                steps: 0,
                live: 1,
                poisoned: false,
                panic_payload: None,
            }),
            cv: Condvar::new(),
        }
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn eligible(st: &State, tid: Tid) -> bool {
        match st.threads[tid] {
            Run::Waiting(intent) => match intent {
                Intent::Step | Intent::Yield => true,
                Intent::Acquire(id) => st
                    .locks
                    .get(&id)
                    .is_none_or(|l| l.writer.is_none() && l.readers == 0),
                Intent::AcquireShared(id) => st.locks.get(&id).is_none_or(|l| l.writer.is_none()),
                Intent::Join(t) => matches!(st.threads[t], Run::Finished),
            },
            _ => false,
        }
    }

    /// Picks the next thread to run. `from` is the thread releasing the
    /// token (`None` when it just finished).
    fn decide(st: &mut State, from: Option<Tid>) -> Decision {
        let eligible: Vec<Tid> = (0..st.threads.len())
            .filter(|&t| Self::eligible(st, t))
            .collect();
        if eligible.is_empty() {
            return Decision::Dead;
        }
        let from_eligible = from.is_some_and(|f| eligible.contains(&f));
        let from_yield = from.is_some_and(|f| matches!(st.threads[f], Run::Waiting(Intent::Yield)));
        let mut options = eligible;
        if from_yield {
            // A yield means "let someone else run": drop the yielder from
            // the choice set unless it is the only runnable thread.
            if options.len() > 1 {
                options.retain(|&t| Some(t) != from);
            }
        } else if from_eligible && st.preemptions >= st.max_preemptions {
            // Preemption budget spent: the running thread must continue.
            options = vec![from.expect("from_eligible implies from")];
        }
        let idx = if st.cursor < st.schedule.len() {
            let (c, n) = st.schedule[st.cursor];
            if n as usize != options.len() {
                return Decision::Corrupt;
            }
            c as usize
        } else {
            st.schedule.push((0, options.len() as u32));
            0
        };
        st.cursor += 1;
        let choice = options[idx];
        if let Some(f) = from {
            if choice != f && from_eligible && !from_yield {
                st.preemptions += 1;
            }
        }
        Decision::Next(choice)
    }

    /// Marks the execution failed; the first recorded payload wins and is
    /// re-raised by [`model`].
    fn poison_with(&self, st: &mut State, msg: String) {
        st.poisoned = true;
        if st.panic_payload.is_none() {
            st.panic_payload = Some(Box::new(msg));
        }
        self.cv.notify_all();
    }

    /// Scheduling point: parks the calling thread with `intent`, lets the
    /// schedule pick the next runner, and returns once the token comes
    /// back. Returns `false` when the execution is poisoned (the caller
    /// must unwind with [`SchedPoisoned`]).
    fn switch(&self, me: Tid, intent: Intent) -> bool {
        let mut st = self.lock_state();
        if st.poisoned {
            return false;
        }
        st.steps += 1;
        if st.steps > MAX_STEPS {
            self.poison_with(
                &mut st,
                format!("loom: exceeded {MAX_STEPS} scheduling points in one execution (livelock or unbounded spin in the model)"),
            );
            return false;
        }
        st.threads[me] = Run::Waiting(intent);
        match Self::decide(&mut st, Some(me)) {
            Decision::Next(t) => {
                st.threads[t] = Run::Running;
                st.current = t;
                self.cv.notify_all();
            }
            Decision::Dead => {
                self.poison_with(
                    &mut st,
                    "loom: deadlock — every live thread is blocked".to_string(),
                );
                return false;
            }
            Decision::Corrupt => {
                self.poison_with(
                    &mut st,
                    "loom: nondeterministic model — replay diverged from the recorded schedule (the closure must be deterministic)".to_string(),
                );
                return false;
            }
        }
        loop {
            if st.poisoned {
                return false;
            }
            if matches!(st.threads[me], Run::Running) {
                // Token granted: commit the acquisition this thread was
                // parked on. No other thread can run between the grant and
                // this bookkeeping (single token).
                match intent {
                    Intent::Acquire(id) => {
                        let l = st.locks.entry(id).or_default();
                        debug_assert!(l.writer.is_none() && l.readers == 0);
                        l.writer = Some(me);
                    }
                    Intent::AcquireShared(id) => {
                        st.locks.entry(id).or_default().readers += 1;
                    }
                    _ => {}
                }
                return true;
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Lock release: pure bookkeeping, not a scheduling point (the next
    /// acquisition or atomic op of any thread is, which covers the same
    /// interleavings).
    fn release(&self, id: u64, shared: bool) {
        let mut st = self.lock_state();
        let l = st.locks.entry(id).or_default();
        if shared {
            l.readers = l.readers.saturating_sub(1);
        } else {
            l.writer = None;
        }
    }

    fn record_panic(&self, payload: Box<dyn Any + Send>) {
        let mut st = self.lock_state();
        st.poisoned = true;
        if payload.downcast_ref::<SchedPoisoned>().is_none() && st.panic_payload.is_none() {
            st.panic_payload = Some(payload);
        }
        self.cv.notify_all();
    }

    /// Registers a child thread (caller holds the token).
    fn register_child(&self) -> Tid {
        let mut st = self.lock_state();
        st.threads.push(Run::Waiting(Intent::Step));
        st.live += 1;
        st.threads.len() - 1
    }

    /// First park of a spawned thread: waits to be scheduled for the first
    /// time. Returns `false` if the execution died before that.
    fn wait_first(&self, me: Tid) -> bool {
        let mut st = self.lock_state();
        loop {
            if st.poisoned {
                return false;
            }
            if matches!(st.threads[me], Run::Running) {
                return true;
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn thread_finished(&self, me: Tid) {
        let mut st = self.lock_state();
        st.threads[me] = Run::Finished;
        st.live -= 1;
        if st.live == 0 {
            self.cv.notify_all();
            return;
        }
        if st.poisoned {
            return;
        }
        match Self::decide(&mut st, None) {
            Decision::Next(t) => {
                st.threads[t] = Run::Running;
                st.current = t;
                self.cv.notify_all();
            }
            Decision::Dead => self.poison_with(
                &mut st,
                "loom: deadlock — every live thread is blocked".to_string(),
            ),
            Decision::Corrupt => self.poison_with(
                &mut st,
                "loom: nondeterministic model — replay diverged from the recorded schedule"
                    .to_string(),
            ),
        }
    }

    fn wait_quiescent(&self) {
        let mut st = self.lock_state();
        while st.live > 0 {
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn take_results(&self) -> (Vec<Choice>, Option<Box<dyn Any + Send>>) {
        let mut st = self.lock_state();
        (std::mem::take(&mut st.schedule), st.panic_payload.take())
    }
}

// ---- primitive-facing entry points -------------------------------------

/// Scheduling point for the calling thread. Returns `true` when the call
/// was model-tracked (so a paired release must be, too); panics with the
/// quiet [`SchedPoisoned`] payload when the execution has already failed.
pub(crate) fn sched_point(intent: Intent) -> bool {
    if let Some((rt, me)) = current() {
        if !rt.switch(me, intent) {
            panic::panic_any(SchedPoisoned);
        }
        true
    } else {
        false
    }
}

/// Non-blocking shared acquisition of lock `id`, used by
/// `RwLock::try_read`. In a model this is one scheduling point
/// (`Intent::Step`, so the attempt itself can be interleaved against);
/// once the token comes back the caller runs exclusively (single token),
/// so inspecting the lock state and registering the reader is race-free.
/// Returns `(tracked, acquired)`: `tracked` means the call ran under a
/// model and an acquired guard must release through [`release_lock`].
pub(crate) fn try_acquire_shared(id: u64) -> (bool, bool) {
    if let Some((rt, me)) = current() {
        if !rt.switch(me, Intent::Step) {
            panic::panic_any(SchedPoisoned);
        }
        let mut st = rt.lock_state();
        let l = st.locks.entry(id).or_default();
        let acquired = l.writer.is_none();
        if acquired {
            l.readers += 1;
        }
        (true, acquired)
    } else {
        (false, false)
    }
}

pub(crate) fn release_lock(id: u64, shared: bool) {
    if let Some((rt, _)) = current() {
        rt.release(id, shared);
    }
}

/// Allocates a process-unique lock id.
pub(crate) fn next_lock_id() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// Spawns a model thread running `f`; used by [`crate::thread::spawn`].
/// Returns the std handle (yielding `None` when the closure panicked) and
/// the model thread id.
pub(crate) fn spawn_model<F, T>(rt: Arc<Rt>, f: F) -> (std::thread::JoinHandle<Option<T>>, Tid)
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let tid = rt.register_child();
    let rt2 = Arc::clone(&rt);
    let handle = std::thread::spawn(move || {
        set_ctx(Some((Arc::clone(&rt2), tid)));
        if !rt2.wait_first(tid) {
            rt2.thread_finished(tid);
            return None;
        }
        let result = panic::catch_unwind(AssertUnwindSafe(f));
        let out = match result {
            Ok(v) => Some(v),
            Err(p) => {
                rt2.record_panic(p);
                None
            }
        };
        rt2.thread_finished(tid);
        out
    });
    // Scheduling point: the child is runnable from here on, so schedules
    // where it runs before the parent's next step are explored.
    sched_point(Intent::Step);
    (handle, tid)
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Installs (once, process-wide) a panic hook that silences the teardown
/// panics of poisoned executions and delegates everything else.
fn install_quiet_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<SchedPoisoned>().is_none() {
                prev(info);
            }
        }));
    });
}

/// Advances the DFS to the next unexplored schedule; `false` when the
/// space is exhausted.
fn next_schedule(schedule: &mut Vec<Choice>) -> bool {
    while let Some((chosen, options)) = schedule.pop() {
        if chosen + 1 < options {
            schedule.push((chosen + 1, options));
            return true;
        }
    }
    false
}

/// Explores every bounded interleaving of `f`. See the crate docs for the
/// exploration strategy, bounds, and the `LOOM_MAX_PREEMPTIONS` /
/// `LOOM_MAX_ITERATIONS` environment overrides.
///
/// # Panics
///
/// Re-raises the first panic of any failing schedule (after printing how
/// many schedules were explored), panics on detected deadlock or
/// nondeterminism, and panics when the schedule budget is exceeded.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    install_quiet_hook();
    let max_preemptions = env_usize("LOOM_MAX_PREEMPTIONS", DEFAULT_MAX_PREEMPTIONS);
    let max_schedules = env_usize("LOOM_MAX_ITERATIONS", DEFAULT_MAX_SCHEDULES);
    let f = Arc::new(f);
    let mut prefix: Vec<Choice> = Vec::new();
    let mut schedules = 0usize;
    loop {
        schedules += 1;
        assert!(
            schedules <= max_schedules,
            "loom: exceeded {max_schedules} schedules; shrink the model or raise LOOM_MAX_ITERATIONS"
        );
        let rt = Arc::new(Rt::new(prefix, max_preemptions));
        let rt_root = Arc::clone(&rt);
        let f_run = Arc::clone(&f);
        let root = std::thread::spawn(move || {
            set_ctx(Some((Arc::clone(&rt_root), 0)));
            let result = panic::catch_unwind(AssertUnwindSafe(|| f_run()));
            if let Err(p) = result {
                rt_root.record_panic(p);
            }
            rt_root.thread_finished(0);
        });
        rt.wait_quiescent();
        let _ = root.join();
        let (schedule, payload) = rt.take_results();
        if let Some(p) = payload {
            eprintln!(
                "loom: counterexample after {schedules} schedule(s), {} decision points",
                schedule.len()
            );
            panic::resume_unwind(p);
        }
        prefix = schedule;
        if !next_schedule(&mut prefix) {
            break;
        }
    }
}
