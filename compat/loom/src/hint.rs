//! Spin-loop hint: under a model this must deschedule the spinner (a spin
//! that never yields would livelock the single-token scheduler), so it is
//! equivalent to [`crate::thread::yield_now`].

/// Signals a busy-wait iteration; a yield-style scheduling point in a
/// model, `std::hint::spin_loop` outside.
pub fn spin_loop() {
    if crate::rt::current().is_some() {
        crate::thread::yield_now();
    } else {
        std::hint::spin_loop();
    }
}
