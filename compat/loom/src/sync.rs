//! Model-checked synchronization primitives.
//!
//! API shape follows `parking_lot` (non-poisoning guards returned directly)
//! because that is what the workspace's `sync` facades re-export on the
//! non-loom side; the real loom mirrors `std`'s `Result`-returning API
//! instead. Under [`crate::model`] every acquisition is a scheduling
//! point; outside a model the types behave like plain `std` locks.

use crate::rt::{self, Intent};
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

pub use std::sync::Arc;

pub mod atomic;

/// Mutual-exclusion lock; a scheduling point under a model.
pub struct Mutex<T: ?Sized> {
    id: u64,
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            id: rt::next_lock_id(),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking (in model: parking on the scheduler)
    /// until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let tracked = rt::sched_point(Intent::Acquire(self.id));
        MutexGuard {
            // In-model the scheduler grants the token only when the lock is
            // free, so this inner acquisition never contends.
            inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
            id: self.id,
            tracked,
        }
    }

    /// Returns a mutable reference to the protected value without locking
    /// (exclusive access is guaranteed by `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Mutex").field(&self.inner).finish()
    }
}

/// Guard for [`Mutex::lock`]; releases the model lock state on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
    id: u64,
    tracked: bool,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.tracked {
            rt::release_lock(self.id, false);
        }
    }
}

/// Readers-writer lock; acquisitions are scheduling points under a model.
pub struct RwLock<T: ?Sized> {
    id: u64,
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            id: rt::next_lock_id(),
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let tracked = rt::sched_point(Intent::AcquireShared(self.id));
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
            id: self.id,
            tracked,
        }
    }

    /// Attempts shared read access without blocking; `None` when a writer
    /// holds the lock. In a model the attempt is one scheduling point and
    /// the grab-or-fail decision is made against the model's lock state.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        let (tracked, acquired) = rt::try_acquire_shared(self.id);
        if tracked {
            if !acquired {
                return None;
            }
            // The model granted shared access, so no model thread holds the
            // inner write lock; this cannot block.
            return Some(RwLockReadGuard {
                inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
                id: self.id,
                tracked: true,
            });
        }
        match self.inner.try_read() {
            Ok(inner) => Some(RwLockReadGuard {
                inner,
                id: self.id,
                tracked: false,
            }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockReadGuard {
                inner: p.into_inner(),
                id: self.id,
                tracked: false,
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let tracked = rt::sched_point(Intent::Acquire(self.id));
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
            id: self.id,
            tracked,
        }
    }

    /// Returns a mutable reference to the protected value without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("RwLock").field(&self.inner).finish()
    }
}

/// Shared guard for [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
    id: u64,
    tracked: bool,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        if self.tracked {
            rt::release_lock(self.id, true);
        }
    }
}

/// Exclusive guard for [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
    id: u64,
    tracked: bool,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        if self.tracked {
            rt::release_lock(self.id, false);
        }
    }
}
