//! Offline shim of the [`loom`](https://docs.rs/loom) model checker, in the
//! style of the other `compat/` crates: a minimal, dependency-free,
//! API-compatible subset sufficient for this workspace's concurrency models.
//!
//! # What it does
//!
//! [`model`] runs a closure repeatedly, exploring the possible thread
//! interleavings of every synchronization operation performed through this
//! crate's [`sync`] and [`thread`] primitives. Execution is serialized on a
//! scheduler token: exactly one model thread runs at a time, and at every
//! scheduling point (lock acquisition, atomic operation, spawn, join,
//! yield) the scheduler either replays a recorded choice or records a new
//! branch. A depth-first search over those branch points enumerates
//! schedules until the space is exhausted or a schedule fails.
//!
//! Any panic inside the model (assertion failure, detected deadlock,
//! nondeterminism) aborts the exploration and is re-raised from [`model`]
//! together with the number of schedules explored, so `#[should_panic]` and
//! `catch_unwind`-based non-vacuity tests see the original payload.
//!
//! # What it deliberately does not do
//!
//! * **Weak memory.** The real loom explores C11 memory-model behaviors
//!   (store buffering, unsynchronized loads). This shim executes atomics
//!   with `SeqCst` semantics regardless of the ordering argument: it
//!   explores *interleavings*, not *reorderings*. Lock-protocol bugs,
//!   atomicity violations, lost updates, and deadlocks are found; bugs that
//!   require a non-SC execution are not. The TSan CI job covers the
//!   latter on real hardware.
//! * **Data-race detection on plain memory.** Safe Rust cannot data-race;
//!   the workspace forbids `unsafe` (enforced by `xtask lint`), so every
//!   shared access already goes through these primitives.
//!
//! # Bounding
//!
//! Exploration is bounded two ways, both tunable by environment variable:
//!
//! * `LOOM_MAX_PREEMPTIONS` (default 2): maximum *involuntary* context
//!   switches per schedule, the classic CHESS bound — most concurrency
//!   bugs manifest with ≤ 2 preemptions. Voluntary switches (blocking on
//!   a lock, yielding, finishing) are free.
//! * `LOOM_MAX_ITERATIONS` (default 200 000): hard cap on the number of
//!   schedules; exceeding it panics rather than silently truncating, so a
//!   model that outgrows its budget fails loudly instead of becoming
//!   vacuous.
//!
//! # Outside a model
//!
//! Every primitive degrades to its plain `std` behavior when used by a
//! thread that is not running under [`model`], so code ported to these
//! types (via a `cfg(loom)` `sync` facade) still works in ordinary tests
//! and binaries even when compiled with `--cfg loom`.

pub mod hint;
mod rt;
pub mod sync;
pub mod thread;

pub use rt::model;
