//! Model-checked atomics.
//!
//! Every operation is a scheduling point under a model and executes with
//! `SeqCst` semantics regardless of the `Ordering` argument: the shim
//! explores interleavings under sequential consistency, not weak-memory
//! reorderings (see the crate docs). Outside a model the given ordering is
//! forwarded unchanged to the `std` atomic.

use crate::rt::{self, Intent};
use std::sync::atomic::Ordering as StdOrdering;

pub use std::sync::atomic::Ordering;

/// True when the call came from inside a model (one scheduling point
/// consumed); used by each op to pick SeqCst vs the caller's ordering.
#[inline]
fn step() -> bool {
    rt::sched_point(Intent::Step)
}

#[inline]
fn ord(model: bool, user: StdOrdering) -> StdOrdering {
    if model {
        StdOrdering::SeqCst
    } else {
        user
    }
}

/// CAS failure orderings must be no stronger than success and not Release.
#[inline]
fn fail_ord(model: bool, user: StdOrdering) -> StdOrdering {
    if model {
        StdOrdering::SeqCst
    } else {
        user
    }
}

macro_rules! int_atomic {
    ($name:ident, $std:ty, $int:ty) => {
        /// Model-checked integer atomic; see the module docs.
        #[derive(Debug, Default)]
        pub struct $name($std);

        impl $name {
            /// Creates a new atomic with the given initial value.
            pub fn new(v: $int) -> Self {
                Self(<$std>::new(v))
            }

            /// Loads the value; a scheduling point under a model.
            pub fn load(&self, order: StdOrdering) -> $int {
                let m = step();
                self.0.load(ord(m, order))
            }

            /// Stores `val`; a scheduling point under a model.
            pub fn store(&self, val: $int, order: StdOrdering) {
                let m = step();
                self.0.store(val, ord(m, order));
            }

            /// Atomic add returning the previous value.
            pub fn fetch_add(&self, val: $int, order: StdOrdering) -> $int {
                let m = step();
                self.0.fetch_add(val, ord(m, order))
            }

            /// Atomic subtract returning the previous value.
            pub fn fetch_sub(&self, val: $int, order: StdOrdering) -> $int {
                let m = step();
                self.0.fetch_sub(val, ord(m, order))
            }

            /// Atomic bitwise-or returning the previous value.
            pub fn fetch_or(&self, val: $int, order: StdOrdering) -> $int {
                let m = step();
                self.0.fetch_or(val, ord(m, order))
            }

            /// Atomic maximum returning the previous value.
            pub fn fetch_max(&self, val: $int, order: StdOrdering) -> $int {
                let m = step();
                self.0.fetch_max(val, ord(m, order))
            }

            /// Atomic swap returning the previous value.
            pub fn swap(&self, val: $int, order: StdOrdering) -> $int {
                let m = step();
                self.0.swap(val, ord(m, order))
            }

            /// Atomic compare-exchange.
            pub fn compare_exchange(
                &self,
                current: $int,
                new: $int,
                success: StdOrdering,
                failure: StdOrdering,
            ) -> Result<$int, $int> {
                let m = step();
                self.0
                    .compare_exchange(current, new, ord(m, success), fail_ord(m, failure))
            }

            /// Atomic compare-exchange allowed to fail spuriously.
            pub fn compare_exchange_weak(
                &self,
                current: $int,
                new: $int,
                success: StdOrdering,
                failure: StdOrdering,
            ) -> Result<$int, $int> {
                let m = step();
                self.0
                    .compare_exchange_weak(current, new, ord(m, success), fail_ord(m, failure))
            }

            /// Returns a mutable reference to the value (no scheduling
            /// point: `&mut self` proves exclusivity).
            pub fn get_mut(&mut self) -> &mut $int {
                self.0.get_mut()
            }

            /// Consumes the atomic, returning the value.
            pub fn into_inner(self) -> $int {
                self.0.into_inner()
            }
        }
    };
}

int_atomic!(AtomicU32, std::sync::atomic::AtomicU32, u32);
int_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
int_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

/// Model-checked boolean atomic; see the module docs.
#[derive(Debug, Default)]
pub struct AtomicBool(std::sync::atomic::AtomicBool);

impl AtomicBool {
    /// Creates a new atomic with the given initial value.
    pub fn new(v: bool) -> Self {
        Self(std::sync::atomic::AtomicBool::new(v))
    }

    /// Loads the value; a scheduling point under a model.
    pub fn load(&self, order: StdOrdering) -> bool {
        let m = step();
        self.0.load(ord(m, order))
    }

    /// Stores `val`; a scheduling point under a model.
    pub fn store(&self, val: bool, order: StdOrdering) {
        let m = step();
        self.0.store(val, ord(m, order));
    }

    /// Atomic swap returning the previous value.
    pub fn swap(&self, val: bool, order: StdOrdering) -> bool {
        let m = step();
        self.0.swap(val, ord(m, order))
    }

    /// Atomic compare-exchange.
    pub fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        success: StdOrdering,
        failure: StdOrdering,
    ) -> Result<bool, bool> {
        let m = step();
        self.0
            .compare_exchange(current, new, ord(m, success), fail_ord(m, failure))
    }

    /// Returns a mutable reference to the value.
    pub fn get_mut(&mut self) -> &mut bool {
        self.0.get_mut()
    }

    /// Consumes the atomic, returning the value.
    pub fn into_inner(self) -> bool {
        self.0.into_inner()
    }
}

/// Model-checked pointer atomic; see the module docs.
#[derive(Debug)]
pub struct AtomicPtr<T>(std::sync::atomic::AtomicPtr<T>);

impl<T> AtomicPtr<T> {
    /// Creates a new atomic holding `p`.
    pub fn new(p: *mut T) -> Self {
        Self(std::sync::atomic::AtomicPtr::new(p))
    }

    /// Loads the pointer; a scheduling point under a model.
    pub fn load(&self, order: StdOrdering) -> *mut T {
        let m = step();
        self.0.load(ord(m, order))
    }

    /// Stores `p`; a scheduling point under a model.
    pub fn store(&self, p: *mut T, order: StdOrdering) {
        let m = step();
        self.0.store(p, ord(m, order));
    }

    /// Atomic swap returning the previous pointer.
    pub fn swap(&self, p: *mut T, order: StdOrdering) -> *mut T {
        let m = step();
        self.0.swap(p, ord(m, order))
    }

    /// Atomic compare-exchange.
    pub fn compare_exchange(
        &self,
        current: *mut T,
        new: *mut T,
        success: StdOrdering,
        failure: StdOrdering,
    ) -> Result<*mut T, *mut T> {
        let m = step();
        self.0
            .compare_exchange(current, new, ord(m, success), fail_ord(m, failure))
    }

    /// Returns a mutable reference to the pointer (no scheduling point:
    /// `&mut self` proves exclusivity).
    pub fn get_mut(&mut self) -> &mut *mut T {
        self.0.get_mut()
    }

    /// Consumes the atomic, returning the pointer.
    pub fn into_inner(self) -> *mut T {
        self.0.into_inner()
    }
}

impl<T> Default for AtomicPtr<T> {
    fn default() -> Self {
        Self::new(std::ptr::null_mut())
    }
}

/// Memory fence; a scheduling point under a model, a real fence outside.
pub fn fence(order: StdOrdering) {
    let m = step();
    std::sync::atomic::fence(ord(m, order));
}
