//! Model-aware threads: spawns register with the running model's
//! scheduler; outside a model they are plain `std::thread` spawns.

use crate::rt::{self, Intent, Tid};
use std::sync::Arc;
use std::thread::Result;

enum Inner<T> {
    Model {
        handle: std::thread::JoinHandle<Option<T>>,
        tid: Tid,
        rt: Arc<crate::rt::Rt>,
    },
    Real(std::thread::JoinHandle<T>),
}

/// Handle to a spawned thread; joining is a scheduling point in a model.
pub struct JoinHandle<T> {
    inner: Inner<T>,
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result. Inside a
    /// model the wait is a scheduling point (`Join` intent), so all
    /// completion orders are explored.
    pub fn join(self) -> Result<T> {
        match self.inner {
            Inner::Model { handle, tid, rt } => {
                let _ = &rt; // rt keeps the runtime alive until the join
                rt::sched_point(Intent::Join(tid));
                match handle.join() {
                    Ok(Some(v)) => Ok(v),
                    Ok(None) => Err(Box::new("loom: model thread panicked")),
                    Err(e) => Err(e),
                }
            }
            Inner::Real(h) => h.join(),
        }
    }
}

/// Spawns a thread. Inside a model, the child becomes a model thread whose
/// start, synchronization operations, and exit are all scheduling points.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    if let Some((rt, _me)) = rt::current() {
        let (handle, tid) = rt::spawn_model(Arc::clone(&rt), f);
        JoinHandle {
            inner: Inner::Model { handle, tid, rt },
        }
    } else {
        JoinHandle {
            inner: Inner::Real(std::thread::spawn(f)),
        }
    }
}

/// Yields: in a model, a scheduling point that prefers other runnable
/// threads and never charges the preemption budget.
pub fn yield_now() {
    if rt::current().is_some() {
        rt::sched_point(Intent::Yield);
    } else {
        std::thread::yield_now();
    }
}
