//! Offline drop-in replacement for the subset of `parking_lot` 0.12 this
//! workspace uses: `Mutex` and `RwLock` with non-poisoning `lock()` /
//! `read()` / `write()`.
//!
//! Implemented as thin wrappers over `std::sync` primitives. Poisoning is
//! deliberately swallowed (`PoisonError::into_inner`) to match parking_lot
//! semantics: a panic while holding a guard does not wedge the lock for
//! every later acquirer. Fairness and the smaller lock footprint of the
//! real crate are not reproduced; the index code only relies on the API
//! shape and on reader/writer exclusion.

use std::fmt;
use std::sync::PoisonError;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Non-poisoning mutual-exclusion lock.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns a mutable reference to the protected value without locking
    /// (exclusive access is guaranteed by `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Mutex").field(&self.0).finish()
    }
}

/// Non-poisoning readers-writer lock.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts shared read access without blocking; `None` when a writer
    /// holds (or is waiting on, per std's writer-preference) the lock.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns a mutable reference to the protected value without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("RwLock").field(&self.0).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_shared_and_exclusive() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
