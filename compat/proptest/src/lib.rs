//! Offline drop-in replacement for the subset of `proptest` 1.x this
//! workspace's property tests use.
//!
//! The build environment has no crates.io access, so `proptest` is vendored
//! as this small generate-only engine: strategies produce random values and
//! each test body runs for `ProptestConfig::cases` deterministic cases, but
//! there is **no shrinking** — a failing case reports the exact generated
//! inputs (seeded by the test name, so failures reproduce on re-run) and
//! panics. Supported surface: `proptest!`, `prop_oneof!`, `prop_assert!`,
//! `prop_assert_eq!`, `Strategy::prop_map`, `Just`, `any`, numeric-range
//! strategies, tuple strategies, and `prop::collection::{vec, hash_set}`.

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

// ---------------------------------------------------------------------------
// Deterministic RNG
// ---------------------------------------------------------------------------

/// Per-test deterministic generator (xoshiro256++, seeded from the test
/// name) handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds the generator from a test name via FNV-1a + SplitMix64, so a
    /// given test sees the same case sequence on every run.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut s = [0u64; 4];
        for w in &mut s {
            h = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = h;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *w = z ^ (z >> 31);
        }
        TestRng { s }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, span)`; `span > 0`.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        (((self.next_u64() as u128) * (span as u128)) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------------

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy: Clone {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Value) -> U + Clone,
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// `Strategy::prop_map` adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U + Clone,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// Numeric range strategies.

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

// Tuple strategies (the workspace uses pairs; triples for headroom).

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

// ---------------------------------------------------------------------------
// `any` — full-domain strategies
// ---------------------------------------------------------------------------

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    /// Draws a value from the full domain of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<fn() -> T>);

impl<T> Clone for AnyStrategy<T> {
    fn clone(&self) -> Self {
        AnyStrategy(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Full-domain strategy for `T` (e.g. `any::<u64>()`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

// ---------------------------------------------------------------------------
// Boxed strategies and weighted unions (`prop_oneof!`)
// ---------------------------------------------------------------------------

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Type-erased strategy; cheap to clone.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Erases a concrete strategy; used by `prop_oneof!`.
pub trait IntoBoxed: Strategy + 'static {
    /// Boxes `self`.
    fn into_boxed(self) -> BoxedStrategy<Self::Value> {
        BoxedStrategy(Rc::new(self))
    }
}

impl<S: Strategy + 'static> IntoBoxed for S {}

/// Weighted choice between strategies of a common value type.
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
            total: self.total,
        }
    }
}

impl<T> Union<T> {
    /// Builds a union from `(weight, strategy)` options; weights must not
    /// all be zero.
    pub fn new(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = options.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof: all weights are zero");
        Union { options, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.options {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        // Unreachable: `pick < total` and the weights sum to `total`.
        self.options[0].1.generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

pub mod collection {
    //! `vec` / `hash_set` strategies.

    use super::{Strategy, TestRng};
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive-exclusive bounds for a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.lo < self.hi, "empty size range");
            self.lo + rng.below((self.hi - self.lo) as u64) as usize
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from a size range.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `HashSet<S::Value>` with size drawn from a size range.
    #[derive(Clone)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates hash sets whose elements come from `element`. If the
    /// element domain is too small to reach the drawn size, the set is
    /// returned as large as could be collected within the attempt budget.
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let n = self.size.pick(rng);
            let mut out = HashSet::with_capacity(n);
            let mut attempts = 0usize;
            while out.len() < n && attempts < n * 10 + 100 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

pub use collection::{HashSetStrategy, SizeRange, VecStrategy};

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Run-time knobs; only `cases` is honoured by the shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Soft failure raised by `prop_assert!` / `prop_assert_eq!`.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Drives one property test: `case` generates inputs and runs the body,
/// returning a rendering of the inputs plus the body's verdict. Called by
/// the `proptest!` macro expansion; not part of the public proptest API.
pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> (String, Result<(), TestCaseError>),
{
    let mut rng = TestRng::from_name(name);
    for i in 0..config.cases {
        let (inputs, verdict) = case(&mut rng);
        if let Err(e) = verdict {
            panic!(
                "property `{name}` failed at case {i}/{}: {e}\n  inputs: {inputs}\n  \
                 (no shrinking; inputs are deterministic per test name)",
                config.cases
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Soft assertion: fails the current case without panicking the runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Soft equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} == {:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} == {:?}`: {}",
                l,
                r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Weighted (or unweighted) choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $( (($weight) as u32, $crate::IntoBoxed::into_boxed($strat)) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $( (1u32, $crate::IntoBoxed::into_boxed($strat)) ),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    (@impl $cfg:expr; ) => {};
    (@impl $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            $crate::run_cases(&config, stringify!($name), |rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), rng);)*
                let mut inputs = ::std::string::String::new();
                $(
                    inputs.push_str(concat!(stringify!($arg), " = "));
                    inputs.push_str(&format!("{:?}; ", $arg));
                )*
                let verdict = (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                (inputs, verdict)
            });
        }
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::ProptestConfig::default(); $($rest)*);
    };
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError, TestRng, Union,
    };

    pub mod prop {
        //! Mirrors the `prop::` path alias from upstream's prelude.
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        A(u64),
        B,
    }

    fn op() -> impl Strategy<Value = Op> {
        prop_oneof![
            3 => (0u64..10).prop_map(Op::A),
            1 => Just(Op::B),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_in_bounds(x in 5u64..9, f in 1.0f64..2.0) {
            prop_assert!((5..9).contains(&x));
            prop_assert!((1.0..2.0).contains(&f));
        }

        #[test]
        fn vec_sizes_respected(v in prop::collection::vec(0u32..4, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6, "len {}", v.len());
            prop_assert!(v.iter().all(|&x| x < 4));
        }

        #[test]
        fn hash_set_sizes_respected(s in prop::collection::hash_set(any::<u64>(), 1..=8)) {
            prop_assert!(!s.is_empty() && s.len() <= 8);
        }

        #[test]
        fn oneof_produces_both_variants(ops in prop::collection::vec(op(), 64..65)) {
            let a = ops.iter().filter(|o| matches!(o, Op::A(_))).count();
            prop_assert!(a > 0 && a < 64, "a = {}", a);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::from_name("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failures_panic_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn always_fails(x in 0u64..4) {
                prop_assert!(x > 100, "x is {}", x);
            }
        }
        always_fails();
    }
}
